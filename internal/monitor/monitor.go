// Package monitor reproduces the paper's in-guest resource recorder
// (Section V-C.2): a lightweight tool that runs inside a VM, samples the
// CPU, memory, disk and network counters every tick, and streams the
// readings to an external sink (the paper ships them to remote network
// storage so the local disk stays quiet). Figure 9 is a trace from this
// tool with the VMI access window marked.
package monitor

import (
	"fmt"
	"io"
	"math"
	"sort"

	"modchecker/internal/guest"
)

// Record is one timestamped sample, tagged with the experiment phase
// ("baseline", "vmi-access", ...).
type Record struct {
	VM     string
	Marker string
	Sample guest.ResourceSample
}

// Trace is an ordered series of records from one run.
type Trace struct {
	Records []Record
}

// Recorder samples one guest's counters.
type Recorder struct {
	g *guest.Guest
}

// NewRecorder creates a recorder for the guest. Like the paper's tool it is
// passive: sampling reads counters the guest already maintains.
func NewRecorder(g *guest.Guest) *Recorder {
	return &Recorder{g: g}
}

// Run advances the guest through steps ticks of tickMS simulated
// milliseconds each, sampling after every tick. marker labels each step's
// phase; a nil marker labels everything "baseline". Run may be interleaved
// with external activity (e.g. ModChecker reading the guest's memory
// between steps) by using the step callback form, RunWith.
func (r *Recorder) Run(steps int, tickMS uint64, marker func(step int) string) *Trace {
	return r.RunWith(steps, tickMS, marker, nil)
}

// RunWith is Run with an optional between-steps callback, used by the
// Figure 9 harness to trigger ModChecker's memory access during a marked
// window.
func (r *Recorder) RunWith(steps int, tickMS uint64, marker func(step int) string, between func(step int)) *Trace {
	return r.runWithEmit(steps, tickMS, marker, between, nil)
}

// runWithEmit is the sampling loop; emit, when non-nil, receives each
// record as it is produced (the streaming path in netsink.go).
func (r *Recorder) runWithEmit(steps int, tickMS uint64, marker func(step int) string, between func(step int), emit func(Record)) *Trace {
	t := &Trace{Records: make([]Record, 0, steps)}
	for i := 0; i < steps; i++ {
		if between != nil {
			between(i)
		}
		r.g.Tick(tickMS)
		m := "baseline"
		if marker != nil {
			m = marker(i)
		}
		rec := Record{VM: r.g.Name(), Marker: m, Sample: r.g.Sample()}
		t.Records = append(t.Records, rec)
		if emit != nil {
			emit(rec)
		}
	}
	return t
}

// Field extracts one counter from a sample; the Stats helpers take these.
type Field func(guest.ResourceSample) float64

// Standard fields, matching the counters the paper's tool records.
var (
	CPUIdle   Field = func(s guest.ResourceSample) float64 { return s.CPUIdlePct }
	CPUUser   Field = func(s guest.ResourceSample) float64 { return s.CPUUserPct }
	CPUPriv   Field = func(s guest.ResourceSample) float64 { return s.CPUPrivilegedPct }
	FreePhys  Field = func(s guest.ResourceSample) float64 { return s.FreePhysMemPct }
	FreeVirt  Field = func(s guest.ResourceSample) float64 { return s.FreeVirtMemPct }
	Faults    Field = func(s guest.ResourceSample) float64 { return s.PageFaultsPerS }
	DiskQueue Field = func(s guest.ResourceSample) float64 { return s.DiskQueueLen }
	NetSent   Field = func(s guest.ResourceSample) float64 { return s.NetPacketsSentPerS }
)

// Stats summarizes a field over the records matching the marker ("" matches
// all).
type Stats struct {
	N           int
	Mean, Stdev float64
	Min, Max    float64
}

// FieldStats computes summary statistics of field over records with the
// given marker.
func (t *Trace) FieldStats(field Field, marker string) Stats {
	var vals []float64
	for _, r := range t.Records {
		if marker == "" || r.Marker == marker {
			vals = append(vals, field(r.Sample))
		}
	}
	s := Stats{N: len(vals)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		s.Mean += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean /= float64(s.N)
	for _, v := range vals {
		s.Stdev += (v - s.Mean) * (v - s.Mean)
	}
	s.Stdev = math.Sqrt(s.Stdev / float64(s.N))
	return s
}

// Markers returns the distinct markers present, sorted.
func (t *Trace) Markers() []string {
	set := map[string]bool{}
	for _, r := range t.Records {
		set[r.Marker] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Perturbation quantifies how much a field shifted during a marked window
// relative to baseline, in baseline standard deviations (a z-score of the
// window mean). Figure 9's conclusion — "no significant perturbation" —
// corresponds to small values.
func (t *Trace) Perturbation(field Field, baselineMarker, windowMarker string) float64 {
	base := t.FieldStats(field, baselineMarker)
	win := t.FieldStats(field, windowMarker)
	if base.N == 0 || win.N == 0 {
		return 0
	}
	sd := base.Stdev
	if sd < 1e-9 {
		sd = 1e-9
	}
	return math.Abs(win.Mean-base.Mean) / sd
}

// WriteCSV streams the trace to the sink in the simple ASCII form the
// paper's tool sends to remote storage.
func (t *Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ms,marker,cpu_idle,cpu_user,cpu_priv,free_phys,free_virt,page_faults,disk_queue,disk_reads,disk_writes,net_sent,net_recv"); err != nil {
		return err
	}
	for _, r := range t.Records {
		s := r.Sample
		if _, err := fmt.Fprintf(w, "%d,%s,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.3f,%.2f,%.2f,%.2f,%.2f\n",
			s.TimeMS, r.Marker, s.CPUIdlePct, s.CPUUserPct, s.CPUPrivilegedPct,
			s.FreePhysMemPct, s.FreeVirtMemPct, s.PageFaultsPerS,
			s.DiskQueueLen, s.DiskReadsPerS, s.DiskWritesPerS,
			s.NetPacketsSentPerS, s.NetPacketsRecvPerS); err != nil {
			return err
		}
	}
	return nil
}
