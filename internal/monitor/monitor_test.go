package monitor

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"modchecker/internal/guest"
	"modchecker/internal/stress"
)

func testGuest(t testing.TB) *guest.Guest {
	t.Helper()
	img, err := guest.BuildImage(guest.ModuleSpec{
		Name: "alpha.sys", TextSize: 8 << 10, DataSize: 2 << 10, RdataSize: 1 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := guest.New(guest.Config{Name: "vm1", MemBytes: 16 << 20, BootSeed: 1,
		Disk: map[string][]byte{"alpha.sys": img}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunCollectsRecords(t *testing.T) {
	g := testGuest(t)
	trace := NewRecorder(g).Run(50, 100, nil)
	if len(trace.Records) != 50 {
		t.Fatalf("%d records", len(trace.Records))
	}
	for i, r := range trace.Records {
		if r.VM != "vm1" || r.Marker != "baseline" {
			t.Fatalf("record %d: %+v", i, r)
		}
		if r.Sample.TimeMS != uint64((i+1)*100) {
			t.Fatalf("record %d time = %d", i, r.Sample.TimeMS)
		}
	}
}

func TestMarkers(t *testing.T) {
	g := testGuest(t)
	trace := NewRecorder(g).Run(10, 100, func(i int) string {
		if i >= 5 {
			return "window"
		}
		return "baseline"
	})
	m := trace.Markers()
	if len(m) != 2 || m[0] != "baseline" || m[1] != "window" {
		t.Errorf("Markers = %v", m)
	}
}

func TestFieldStats(t *testing.T) {
	g := testGuest(t)
	trace := NewRecorder(g).Run(100, 100, nil)
	s := trace.FieldStats(CPUIdle, "baseline")
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean < 90 || s.Mean > 100 {
		t.Errorf("idle mean = %.2f", s.Mean)
	}
	if s.Min > s.Mean || s.Max < s.Mean {
		t.Errorf("min/mean/max inconsistent: %+v", s)
	}
	if s.Stdev < 0 {
		t.Errorf("stdev = %f", s.Stdev)
	}
	empty := trace.FieldStats(CPUIdle, "nope")
	if empty.N != 0 {
		t.Error("stats for absent marker nonempty")
	}
}

func TestPerturbationDetectsLoadChange(t *testing.T) {
	g := testGuest(t)
	rec := NewRecorder(g)
	trace := rec.RunWith(100, 100,
		func(i int) string {
			if i >= 50 {
				return "loaded"
			}
			return "baseline"
		},
		func(i int) {
			if i == 50 {
				stress.Apply(g, stress.HeavyLoad)
			}
		})
	z := trace.Perturbation(CPUIdle, "baseline", "loaded")
	if z < 10 {
		t.Errorf("HeavyLoad perturbation z = %.2f, expected large", z)
	}
}

func TestPerturbationNullCase(t *testing.T) {
	g := testGuest(t)
	trace := NewRecorder(g).Run(100, 100, func(i int) string {
		if i%2 == 0 {
			return "a"
		}
		return "b"
	})
	z := trace.Perturbation(CPUIdle, "a", "b")
	if z > 3 {
		t.Errorf("identical-condition perturbation z = %.2f", z)
	}
	if trace.Perturbation(CPUIdle, "a", "missing") != 0 {
		t.Error("missing marker should yield 0")
	}
}

func TestWriteCSV(t *testing.T) {
	g := testGuest(t)
	trace := NewRecorder(g).Run(5, 100, nil)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_ms,marker,cpu_idle") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 12 {
			t.Errorf("row %q has %d commas", l, got)
		}
	}
}

func TestAllStandardFields(t *testing.T) {
	g := testGuest(t)
	trace := NewRecorder(g).Run(20, 100, nil)
	for name, f := range map[string]Field{
		"CPUIdle": CPUIdle, "CPUUser": CPUUser, "CPUPriv": CPUPriv,
		"FreePhys": FreePhys, "FreeVirt": FreeVirt, "Faults": Faults,
		"DiskQueue": DiskQueue, "NetSent": NetSent,
	} {
		s := trace.FieldStats(f, "")
		if s.N != 20 {
			t.Errorf("%s: N = %d", name, s.N)
		}
	}
}

func TestStressLevels(t *testing.T) {
	g := testGuest(t)
	stress.Apply(g, stress.HeavyLoad)
	if g.Load() < 0.9 {
		t.Errorf("HeavyLoad gives Load %.2f", g.Load())
	}
	stress.Idle(g)
	if g.Load() > 0.1 {
		t.Errorf("Idle gives Load %.2f", g.Load())
	}
	stress.ApplyAll([]*guest.Guest{g}, stress.HeavyLoad)
	if g.Load() < 0.9 {
		t.Error("ApplyAll ineffective")
	}
}

// newNamedGuest builds a guest with a distinct name for multi-stream tests.
func newNamedGuest(t *testing.T, i int) (*guest.Guest, error) {
	img, err := guest.BuildImage(guest.ModuleSpec{
		Name: "alpha.sys", TextSize: 8 << 10, DataSize: 2 << 10, RdataSize: 1 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		return nil, err
	}
	return guest.New(guest.Config{
		Name:     fmt.Sprintf("guest%d", i),
		MemBytes: 16 << 20,
		BootSeed: int64(i + 1),
		Disk:     map[string][]byte{"alpha.sys": img},
	})
}
