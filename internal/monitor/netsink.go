package monitor

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The paper's in-guest tool deliberately avoids the local disk ("this
// information was not stored on the local file system since local disk is
// an important part of virtual memory analysis") and ships each reading as
// a small ASCII record to external network storage. This file implements
// both ends: a line-oriented record codec, a streaming emit path on the
// Recorder, and a Collector server that reassembles traces.

// EncodeRecordLine renders one record as a single ASCII line
// (vm|marker|csv-fields), the wire format of the sink.
func EncodeRecordLine(r Record) string {
	s := r.Sample
	return fmt.Sprintf("%s|%s|%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f",
		r.VM, r.Marker, s.TimeMS,
		s.CPUIdlePct, s.CPUUserPct, s.CPUPrivilegedPct,
		s.FreePhysMemPct, s.FreeVirtMemPct, s.PageFaultsPerS,
		s.DiskQueueLen, s.DiskReadsPerS, s.DiskWritesPerS,
		s.NetPacketsSentPerS, s.NetPacketsRecvPerS)
}

// ParseRecordLine decodes one wire line back into a Record.
func ParseRecordLine(line string) (Record, error) {
	parts := strings.SplitN(strings.TrimSpace(line), "|", 3)
	if len(parts) != 3 {
		return Record{}, fmt.Errorf("monitor: malformed record line %q", line)
	}
	fields := strings.Split(parts[2], ",")
	if len(fields) != 12 {
		return Record{}, fmt.Errorf("monitor: record line has %d fields, want 12", len(fields))
	}
	var r Record
	r.VM, r.Marker = parts[0], parts[1]
	t, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("monitor: bad time field: %w", err)
	}
	r.Sample.TimeMS = t
	vals := make([]float64, 11)
	for i := 0; i < 11; i++ {
		v, err := strconv.ParseFloat(fields[i+1], 64)
		if err != nil {
			return Record{}, fmt.Errorf("monitor: bad field %d: %w", i+1, err)
		}
		vals[i] = v
	}
	s := &r.Sample
	s.CPUIdlePct, s.CPUUserPct, s.CPUPrivilegedPct = vals[0], vals[1], vals[2]
	s.FreePhysMemPct, s.FreeVirtMemPct, s.PageFaultsPerS = vals[3], vals[4], vals[5]
	s.DiskQueueLen, s.DiskReadsPerS, s.DiskWritesPerS = vals[6], vals[7], vals[8]
	s.NetPacketsSentPerS, s.NetPacketsRecvPerS = vals[9], vals[10]
	return r, nil
}

// RunStream is RunWith with live emission: every record is encoded and
// written to sink the moment it is sampled, in addition to being collected
// in the returned trace. A nil sink degrades to RunWith.
func (r *Recorder) RunStream(steps int, tickMS uint64, marker func(step int) string, between func(step int), sink io.Writer) (*Trace, error) {
	if sink == nil {
		return r.RunWith(steps, tickMS, marker, between), nil
	}
	w := bufio.NewWriter(sink)
	var streamErr error
	t := r.runWithEmit(steps, tickMS, marker, between, func(rec Record) {
		if streamErr != nil {
			return
		}
		if _, err := w.WriteString(EncodeRecordLine(rec) + "\n"); err != nil {
			streamErr = err
		}
	})
	if err := w.Flush(); err != nil && streamErr == nil {
		streamErr = err
	}
	return t, streamErr
}

// Collector is the remote storage end: a TCP server that accepts record
// streams from guests and reassembles them into traces keyed by VM name.
type Collector struct {
	ln net.Listener
	wg sync.WaitGroup // independently synchronized

	mu     sync.Mutex
	traces map[string]*Trace // guarded by mu
}

// NewCollector starts a collector listening on addr ("127.0.0.1:0" picks a
// free port).
func NewCollector(addr string) (*Collector, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: collector: %w", err)
	}
	c := &Collector{ln: ln, traces: make(map[string]*Trace)}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the collector's listen address for clients to dial.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for sc.Scan() {
				rec, err := ParseRecordLine(sc.Text())
				if err != nil {
					continue // tolerate noise, as a storage daemon would
				}
				c.mu.Lock()
				tr, ok := c.traces[rec.VM]
				if !ok {
					tr = &Trace{}
					c.traces[rec.VM] = tr
				}
				tr.Records = append(tr.Records, rec)
				c.mu.Unlock()
			}
		}()
	}
}

// Trace returns the records collected so far for one VM (a copy).
func (c *Collector) Trace(vm string) *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.traces[vm]
	if !ok {
		return &Trace{}
	}
	out := &Trace{Records: append([]Record(nil), tr.Records...)}
	return out
}

// VMs lists the VMs that have reported.
func (c *Collector) VMs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.traces))
	for vm := range c.traces {
		out = append(out, vm)
	}
	sort.Strings(out)
	return out
}

// Close stops accepting and waits for in-flight connections to drain.
func (c *Collector) Close() error {
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

// Dial connects a guest-side stream to a collector; the returned conn is a
// valid sink for RunStream.
func Dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
