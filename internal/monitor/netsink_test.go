package monitor

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestRecordLineRoundTrip(t *testing.T) {
	g := testGuest(t)
	g.Tick(100)
	rec := Record{VM: "vm1", Marker: "vmi-access", Sample: g.Sample()}
	back, err := ParseRecordLine(EncodeRecordLine(rec))
	if err != nil {
		t.Fatal(err)
	}
	if back.VM != rec.VM || back.Marker != rec.Marker {
		t.Errorf("identity fields: %+v", back)
	}
	if back.Sample.TimeMS != rec.Sample.TimeMS {
		t.Errorf("time %d != %d", back.Sample.TimeMS, rec.Sample.TimeMS)
	}
	// Floats survive to 3 decimal places.
	if math.Abs(back.Sample.CPUIdlePct-rec.Sample.CPUIdlePct) > 0.001 {
		t.Errorf("cpu idle %.5f != %.5f", back.Sample.CPUIdlePct, rec.Sample.CPUIdlePct)
	}
	if math.Abs(back.Sample.PageFaultsPerS-rec.Sample.PageFaultsPerS) > 0.001 {
		t.Errorf("faults differ")
	}
}

func TestParseRecordLineErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"vm1|marker",
		"vm1|m|1,2,3",
		"vm1|m|x,1,1,1,1,1,1,1,1,1,1,1",
		"vm1|m|1,y,1,1,1,1,1,1,1,1,1,1",
	} {
		if _, err := ParseRecordLine(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestRunStreamToCollector(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	g := testGuest(t)
	conn, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	local, err := NewRecorder(g).RunStream(40, 100, func(i int) string {
		if i >= 20 {
			return "vmi-access"
		}
		return "baseline"
	}, nil, conn)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The collector receives asynchronously; wait briefly for drain.
	deadline := time.Now().Add(2 * time.Second)
	var remote *Trace
	for {
		remote = col.Trace("vm1")
		if len(remote.Records) == 40 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(remote.Records) != 40 {
		t.Fatalf("collector has %d records, want 40", len(remote.Records))
	}
	// Remote trace must statistically match the local one.
	for _, marker := range []string{"baseline", "vmi-access"} {
		l := local.FieldStats(CPUIdle, marker)
		r := remote.FieldStats(CPUIdle, marker)
		if l.N != r.N || math.Abs(l.Mean-r.Mean) > 0.01 {
			t.Errorf("%s: local %+v vs remote %+v", marker, l, r)
		}
	}
	vms := col.VMs()
	if len(vms) != 1 || vms[0] != "vm1" {
		t.Errorf("VMs = %v", vms)
	}
}

func TestCollectorToleratesNoise(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	conn, err := Dial(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	g := testGuest(t)
	g.Tick(100)
	good := EncodeRecordLine(Record{VM: "vmX", Marker: "baseline", Sample: g.Sample()})
	if _, err := conn.Write([]byte("garbage line\n" + good + "\nmore|garbage\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for len(col.Trace("vmX").Records) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := len(col.Trace("vmX").Records); n != 1 {
		t.Errorf("collected %d records, want 1 (noise dropped)", n)
	}
}

func TestCollectorUnknownVM(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if n := len(col.Trace("ghost").Records); n != 0 {
		t.Errorf("ghost VM has %d records", n)
	}
}

func TestRunStreamNilSink(t *testing.T) {
	g := testGuest(t)
	tr, err := NewRecorder(g).RunStream(5, 100, nil, nil, nil)
	if err != nil || len(tr.Records) != 5 {
		t.Errorf("got %d records, %v", len(tr.Records), err)
	}
}

func TestMultipleStreamsConcurrently(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			g, err := newNamedGuest(t, i)
			if err != nil {
				done <- err
				return
			}
			conn, err := Dial(col.Addr())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			_, err = NewRecorder(g).RunStream(20, 100, nil, nil, conn)
			done <- err
		}(i)
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(col.VMs()) < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	for _, vm := range col.VMs() {
		if !strings.HasPrefix(vm, "guest") {
			t.Errorf("unexpected VM %q", vm)
		}
		deadline := time.Now().Add(2 * time.Second)
		for len(col.Trace(vm).Records) < 20 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if n := len(col.Trace(vm).Records); n != 20 {
			t.Errorf("%s: %d records", vm, n)
		}
	}
}
