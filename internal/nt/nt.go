// Package nt defines the byte-exact layouts of the Windows kernel
// structures that ModChecker's Module-Searcher traverses inside guest
// memory: LIST_ENTRY, UNICODE_STRING and LDR_DATA_TABLE_ENTRY, plus the
// PsLoadedModuleList convention that links loaded kernel modules into a
// doubly linked list (paper Figure 2).
//
// The offsets match 32-bit Windows XP SP2. Structures are encoded to and
// decoded from raw byte slices; callers move those bytes through guest
// memory (the guest kernel when booting, the VMI layer when introspecting).
package nt

import (
	"encoding/binary"
	"fmt"
	"unicode/utf16"
)

// Structure sizes and field offsets (32-bit XP SP2 layouts).
const (
	// ListEntrySize is sizeof(LIST_ENTRY): Flink + Blink pointers.
	ListEntrySize = 8
	// UnicodeStringSize is sizeof(UNICODE_STRING).
	UnicodeStringSize = 8
	// LdrDataTableEntrySize is the portion of LDR_DATA_TABLE_ENTRY the
	// loader list machinery uses (through TlsIndex, padded to 0x50).
	LdrDataTableEntrySize = 0x50

	// Field offsets within LDR_DATA_TABLE_ENTRY.
	OffInLoadOrderLinks   = 0x00
	OffInMemoryOrderLinks = 0x08
	OffInInitOrderLinks   = 0x10
	OffDllBase            = 0x18
	OffEntryPoint         = 0x1C
	OffSizeOfImage        = 0x20
	OffFullDllName        = 0x24
	OffBaseDllName        = 0x2C
	OffFlags              = 0x34
	OffLoadCount          = 0x38
	OffTlsIndex           = 0x3A
)

// ListEntry is LIST_ENTRY: the forward (FLINK) and backward (BLINK)
// pointers of an intrusive doubly linked list. In PsLoadedModuleList each
// pointer holds the guest virtual address of the *InLoadOrderLinks field*
// of the neighboring LDR_DATA_TABLE_ENTRY (not of the entry's start —
// though for loader entries the field is at offset 0, the distinction
// matters for code reading other lists).
type ListEntry struct {
	Flink uint32
	Blink uint32
}

// EncodeListEntry serializes e into an 8-byte little-endian buffer.
func EncodeListEntry(e ListEntry) []byte {
	b := make([]byte, ListEntrySize)
	binary.LittleEndian.PutUint32(b[0:], e.Flink)
	binary.LittleEndian.PutUint32(b[4:], e.Blink)
	return b
}

// DecodeListEntry parses an 8-byte LIST_ENTRY.
func DecodeListEntry(b []byte) (ListEntry, error) {
	if len(b) < ListEntrySize {
		return ListEntry{}, fmt.Errorf("nt: LIST_ENTRY needs %d bytes, have %d", ListEntrySize, len(b))
	}
	return ListEntry{
		Flink: binary.LittleEndian.Uint32(b[0:]),
		Blink: binary.LittleEndian.Uint32(b[4:]),
	}, nil
}

// UnicodeString is UNICODE_STRING: a counted UTF-16LE string. Length and
// MaximumLength are in bytes; Buffer is the guest VA of the character data.
type UnicodeString struct {
	Length        uint16
	MaximumLength uint16
	Buffer        uint32
}

// EncodeUnicodeString serializes s into an 8-byte buffer.
func EncodeUnicodeString(s UnicodeString) []byte {
	b := make([]byte, UnicodeStringSize)
	binary.LittleEndian.PutUint16(b[0:], s.Length)
	binary.LittleEndian.PutUint16(b[2:], s.MaximumLength)
	binary.LittleEndian.PutUint32(b[4:], s.Buffer)
	return b
}

// DecodeUnicodeString parses an 8-byte UNICODE_STRING header.
func DecodeUnicodeString(b []byte) (UnicodeString, error) {
	if len(b) < UnicodeStringSize {
		return UnicodeString{}, fmt.Errorf("nt: UNICODE_STRING needs %d bytes, have %d", UnicodeStringSize, len(b))
	}
	return UnicodeString{
		Length:        binary.LittleEndian.Uint16(b[0:]),
		MaximumLength: binary.LittleEndian.Uint16(b[2:]),
		Buffer:        binary.LittleEndian.Uint32(b[4:]),
	}, nil
}

// EncodeUTF16 converts a Go string to UTF-16LE bytes (no terminator), the
// encoding of UNICODE_STRING buffers.
func EncodeUTF16(s string) []byte {
	u := utf16.Encode([]rune(s))
	b := make([]byte, 2*len(u))
	for i, c := range u {
		binary.LittleEndian.PutUint16(b[2*i:], c)
	}
	return b
}

// DecodeUTF16 converts UTF-16LE bytes back to a Go string. Odd trailing
// bytes are rejected.
func DecodeUTF16(b []byte) (string, error) {
	if len(b)%2 != 0 {
		return "", fmt.Errorf("nt: UTF-16 buffer has odd length %d", len(b))
	}
	u := make([]uint16, len(b)/2)
	for i := range u {
		u[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return string(utf16.Decode(u)), nil
}

// LdrDataTableEntry is LDR_DATA_TABLE_ENTRY, the node type of
// PsLoadedModuleList. Every loaded kernel module has one; Module-Searcher
// walks InLoadOrderLinks and matches BaseDllName (paper Section IV-A).
type LdrDataTableEntry struct {
	InLoadOrderLinks           ListEntry
	InMemoryOrderLinks         ListEntry
	InInitializationOrderLinks ListEntry
	DllBase                    uint32 // guest VA of the module's first byte
	EntryPoint                 uint32
	SizeOfImage                uint32
	FullDllName                UnicodeString
	BaseDllName                UnicodeString
	Flags                      uint32
	LoadCount                  uint16
	TlsIndex                   uint16
}

// Encode serializes the entry into LdrDataTableEntrySize bytes.
func (e *LdrDataTableEntry) Encode() []byte {
	b := make([]byte, LdrDataTableEntrySize)
	copy(b[OffInLoadOrderLinks:], EncodeListEntry(e.InLoadOrderLinks))
	copy(b[OffInMemoryOrderLinks:], EncodeListEntry(e.InMemoryOrderLinks))
	copy(b[OffInInitOrderLinks:], EncodeListEntry(e.InInitializationOrderLinks))
	binary.LittleEndian.PutUint32(b[OffDllBase:], e.DllBase)
	binary.LittleEndian.PutUint32(b[OffEntryPoint:], e.EntryPoint)
	binary.LittleEndian.PutUint32(b[OffSizeOfImage:], e.SizeOfImage)
	copy(b[OffFullDllName:], EncodeUnicodeString(e.FullDllName))
	copy(b[OffBaseDllName:], EncodeUnicodeString(e.BaseDllName))
	binary.LittleEndian.PutUint32(b[OffFlags:], e.Flags)
	binary.LittleEndian.PutUint16(b[OffLoadCount:], e.LoadCount)
	binary.LittleEndian.PutUint16(b[OffTlsIndex:], e.TlsIndex)
	return b
}

// DecodeLdrDataTableEntry parses an LDR_DATA_TABLE_ENTRY from raw guest
// bytes.
func DecodeLdrDataTableEntry(b []byte) (*LdrDataTableEntry, error) {
	if len(b) < LdrDataTableEntrySize {
		return nil, fmt.Errorf("nt: LDR_DATA_TABLE_ENTRY needs %#x bytes, have %#x",
			LdrDataTableEntrySize, len(b))
	}
	var e LdrDataTableEntry
	var err error
	if e.InLoadOrderLinks, err = DecodeListEntry(b[OffInLoadOrderLinks:]); err != nil {
		return nil, err
	}
	if e.InMemoryOrderLinks, err = DecodeListEntry(b[OffInMemoryOrderLinks:]); err != nil {
		return nil, err
	}
	if e.InInitializationOrderLinks, err = DecodeListEntry(b[OffInInitOrderLinks:]); err != nil {
		return nil, err
	}
	e.DllBase = binary.LittleEndian.Uint32(b[OffDllBase:])
	e.EntryPoint = binary.LittleEndian.Uint32(b[OffEntryPoint:])
	e.SizeOfImage = binary.LittleEndian.Uint32(b[OffSizeOfImage:])
	if e.FullDllName, err = DecodeUnicodeString(b[OffFullDllName:]); err != nil {
		return nil, err
	}
	if e.BaseDllName, err = DecodeUnicodeString(b[OffBaseDllName:]); err != nil {
		return nil, err
	}
	e.Flags = binary.LittleEndian.Uint32(b[OffFlags:])
	e.LoadCount = binary.LittleEndian.Uint16(b[OffLoadCount:])
	e.TlsIndex = binary.LittleEndian.Uint16(b[OffTlsIndex:])
	return &e, nil
}
