package nt

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestListEntryRoundTrip(t *testing.T) {
	e := ListEntry{Flink: 0x8055A420, Blink: 0x81234568}
	b := EncodeListEntry(e)
	if len(b) != ListEntrySize {
		t.Fatalf("encoded %d bytes", len(b))
	}
	back, err := DecodeListEntry(b)
	if err != nil {
		t.Fatal(err)
	}
	if back != e {
		t.Errorf("round trip %+v != %+v", back, e)
	}
}

func TestListEntryLayout(t *testing.T) {
	b := EncodeListEntry(ListEntry{Flink: 0x11223344, Blink: 0x55667788})
	if binary.LittleEndian.Uint32(b[0:]) != 0x11223344 {
		t.Error("FLINK not at offset 0")
	}
	if binary.LittleEndian.Uint32(b[4:]) != 0x55667788 {
		t.Error("BLINK not at offset 4")
	}
}

func TestListEntryShortBuffer(t *testing.T) {
	if _, err := DecodeListEntry(make([]byte, 7)); err == nil {
		t.Error("7-byte LIST_ENTRY decoded")
	}
}

func TestUnicodeStringRoundTrip(t *testing.T) {
	s := UnicodeString{Length: 14, MaximumLength: 16, Buffer: 0x81001000}
	back, err := DecodeUnicodeString(EncodeUnicodeString(s))
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("%+v != %+v", back, s)
	}
}

func TestUnicodeStringShortBuffer(t *testing.T) {
	if _, err := DecodeUnicodeString(make([]byte, 4)); err == nil {
		t.Error("4-byte UNICODE_STRING decoded")
	}
}

func TestUTF16RoundTrip(t *testing.T) {
	for _, s := range []string{"", "hal.dll", "http.sys", `\SystemRoot\System32\drivers\ntfs.sys`, "面白いドライバ"} {
		b := EncodeUTF16(s)
		back, err := DecodeUTF16(b)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if back != s {
			t.Errorf("round trip %q -> %q", s, back)
		}
	}
}

func TestUTF16LittleEndian(t *testing.T) {
	b := EncodeUTF16("A")
	if !bytes.Equal(b, []byte{0x41, 0x00}) {
		t.Errorf("encoded % x", b)
	}
}

func TestUTF16OddLength(t *testing.T) {
	if _, err := DecodeUTF16([]byte{0x41, 0x00, 0x42}); err == nil {
		t.Error("odd-length UTF-16 decoded")
	}
}

func TestLdrEntryRoundTrip(t *testing.T) {
	e := LdrDataTableEntry{
		InLoadOrderLinks:           ListEntry{Flink: 1, Blink: 2},
		InMemoryOrderLinks:         ListEntry{Flink: 3, Blink: 4},
		InInitializationOrderLinks: ListEntry{Flink: 5, Blink: 6},
		DllBase:                    0xF8CC2000,
		EntryPoint:                 0xF8CC3010,
		SizeOfImage:                0x24000,
		FullDllName:                UnicodeString{Length: 20, MaximumLength: 22, Buffer: 0x81000100},
		BaseDllName:                UnicodeString{Length: 14, MaximumLength: 14, Buffer: 0x81000200},
		Flags:                      0x09004000,
		LoadCount:                  1,
		TlsIndex:                   0xFFFF,
	}
	b := e.Encode()
	if len(b) != LdrDataTableEntrySize {
		t.Fatalf("encoded %d bytes", len(b))
	}
	back, err := DecodeLdrDataTableEntry(b)
	if err != nil {
		t.Fatal(err)
	}
	if *back != e {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", *back, e)
	}
}

// TestLdrEntryXPOffsets pins the field offsets to the published 32-bit XP
// SP2 layout; introspection tools hardcode these, so they must never move.
func TestLdrEntryXPOffsets(t *testing.T) {
	e := LdrDataTableEntry{
		DllBase:     0xAABBCCDD,
		EntryPoint:  0x11223344,
		SizeOfImage: 0x55667788,
		BaseDllName: UnicodeString{Length: 0x1234, MaximumLength: 0x5678, Buffer: 0x9ABCDEF0},
	}
	b := e.Encode()
	le := binary.LittleEndian
	if got := le.Uint32(b[0x18:]); got != 0xAABBCCDD {
		t.Errorf("DllBase at 0x18 = %#x", got)
	}
	if got := le.Uint32(b[0x1C:]); got != 0x11223344 {
		t.Errorf("EntryPoint at 0x1C = %#x", got)
	}
	if got := le.Uint32(b[0x20:]); got != 0x55667788 {
		t.Errorf("SizeOfImage at 0x20 = %#x", got)
	}
	if got := le.Uint16(b[0x2C:]); got != 0x1234 {
		t.Errorf("BaseDllName.Length at 0x2C = %#x", got)
	}
	if got := le.Uint32(b[0x30:]); got != 0x9ABCDEF0 {
		t.Errorf("BaseDllName.Buffer at 0x30 = %#x", got)
	}
}

func TestLdrEntryShortBuffer(t *testing.T) {
	if _, err := DecodeLdrDataTableEntry(make([]byte, LdrDataTableEntrySize-1)); err == nil {
		t.Error("short LDR entry decoded")
	}
}

func TestLdrEntryQuick(t *testing.T) {
	f := func(base, entry, size, flags uint32, load, tls uint16) bool {
		e := LdrDataTableEntry{
			DllBase: base, EntryPoint: entry, SizeOfImage: size,
			Flags: flags, LoadCount: load, TlsIndex: tls,
		}
		back, err := DecodeLdrDataTableEntry(e.Encode())
		return err == nil && *back == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUTF16Quick(t *testing.T) {
	f := func(s string) bool {
		back, err := DecodeUTF16(EncodeUTF16(s))
		if err != nil {
			return false
		}
		// Round trip is exact for strings without unpaired surrogates;
		// quick generates valid UTF-8 Go strings, which may contain any
		// runes — compare decoded forms.
		return back == string([]rune(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
