package pe

import (
	"fmt"
)

// Default alignments used by the builder; these match what 32-bit Windows
// driver linkers emit.
const (
	DefaultSectionAlignment = 0x1000
	DefaultFileAlignment    = 0x200
)

// Builder assembles a well-formed PE32 image from sections, relocation
// sites and imports, computing all offsets, alignments and directory
// entries. It is how the repository synthesizes the kernel modules
// (hal.dll, http.sys, dummy.sys, ...) that the real paper takes from a
// Windows XP installation.
type Builder struct {
	imageBase  uint32
	timestamp  uint32
	subsystem  uint16
	chars      uint16
	dosStub    []byte
	entryPoint uint32 // RVA, set via SetEntryPoint
	sections   []builderSection
	relocSites []uint32
	imports    []Import
	exports    *Export
	fileAlign  uint32
}

type builderSection struct {
	name        string
	data        []byte
	virtualSize uint32 // 0 means len(data)
	chars       uint32
}

// NewBuilder returns a Builder for a native (kernel-mode) image with the
// given preferred load address.
func NewBuilder(imageBase uint32) *Builder {
	return &Builder{
		imageBase: imageBase,
		timestamp: 0x4F000000, // fixed so cloned VMs build identical files
		subsystem: SubsystemNative,
		chars:     FileExecutableImage | File32BitMachine | FileLineNumsStripped | FileLocalSymsStripped,
		dosStub:   buildDOSStub(DefaultDOSStub),
		fileAlign: DefaultFileAlignment,
	}
}

// buildDOSStub produces the classic 16-bit stub program: a few real-mode
// instructions (print message, exit) followed by the message text. The
// byte values ahead of the text mimic the MS linker stub closely enough
// that the stub-patch experiment behaves as in the paper.
func buildDOSStub(message string) []byte {
	code := []byte{
		0x0E,             // push cs
		0x1F,             // pop ds
		0xBA, 0x0E, 0x00, // mov dx, 0x000e (message offset)
		0xB4, 0x09, // mov ah, 0x09 (print string)
		0xCD, 0x21, // int 0x21
		0xB8, 0x01, 0x4C, // mov ax, 0x4c01 (exit)
		0xCD, 0x21, // int 0x21
	}
	stub := append(code, []byte(message)...)
	// Pad so DOS header + stub lands on an 8-byte boundary for ELfanew.
	for (DOSHeaderSize+len(stub))%8 != 0 {
		stub = append(stub, 0)
	}
	return stub
}

// SetDOSStubMessage replaces the stub message text (used by tests).
func (b *Builder) SetDOSStubMessage(message string) {
	b.dosStub = buildDOSStub(message)
}

// SetDOSStubRaw installs stub bytes verbatim; image rebuilders use this to
// preserve the original stub exactly.
func (b *Builder) SetDOSStubRaw(stub []byte) {
	b.dosStub = append([]byte(nil), stub...)
}

// SetFileAlignment overrides the raw-data alignment. PE rebuilding tools
// (like the CFF Explorer workflow in the paper's DLL-hooking experiment)
// often re-emit images at a coarser alignment, changing every section
// header's file pointers.
func (b *Builder) SetFileAlignment(a uint32) { b.fileAlign = a }

// SetTimestamp overrides the link timestamp recorded in the file header.
func (b *Builder) SetTimestamp(ts uint32) { b.timestamp = ts }

// SetDLL marks the image as a DLL rather than a driver executable.
func (b *Builder) SetDLL() { b.chars |= FileDLL }

// SetEntryPoint records the image entry point as an RVA. It must lie inside
// a section added before Build is called.
func (b *Builder) SetEntryPoint(rva uint32) { b.entryPoint = rva }

// AddSection appends a section with the given raw data and characteristics.
// Sections are laid out in the order added, each starting at the next
// SectionAlignment boundary. It returns the RVA the section will occupy.
func (b *Builder) AddSection(name string, data []byte, chars uint32) uint32 {
	rva := b.nextRVA()
	b.sections = append(b.sections, builderSection{name: name, data: data, chars: chars})
	return rva
}

// AddSectionWithVirtualSize is AddSection for sections whose mapped size
// exceeds their raw size (the loader zero-fills the tail).
func (b *Builder) AddSectionWithVirtualSize(name string, data []byte, virtualSize uint32, chars uint32) uint32 {
	rva := b.nextRVA()
	b.sections = append(b.sections, builderSection{name: name, data: data, virtualSize: virtualSize, chars: chars})
	return rva
}

// nextRVA returns the RVA at which the next added section will start.
func (b *Builder) nextRVA() uint32 {
	return b.rvaAfter(b.sections, b.headersRVA())
}

// headersRVA is the RVA of the first section: the headers rounded up to the
// section alignment.
func (b *Builder) headersRVA() uint32 {
	return DefaultSectionAlignment
}

// SetRelocSites records the RVAs of 32-bit absolute-address fixup sites.
// Build emits a .reloc section for them and points the base-relocation data
// directory at it.
func (b *Builder) SetRelocSites(sites []uint32) { b.relocSites = sites }

// SetImports records the DLL imports. Build emits an INIT section holding
// the import directory and points the import data directory at it.
func (b *Builder) SetImports(imports []Import) { b.imports = imports }

// Build assembles and validates the image.
func (b *Builder) Build() (*Image, error) {
	secs := append([]builderSection(nil), b.sections...)

	var importDir, relocDir, exportDir DataDirectory
	if b.exports != nil {
		rva := b.rvaAfter(secs, b.headersRVA())
		blob := BuildExportBlob(*b.exports, rva)
		secs = append(secs, builderSection{
			name:  ".edata",
			data:  blob,
			chars: ScnCntInitializedData | ScnMemRead,
		})
		exportDir = DataDirectory{VirtualAddress: rva, Size: uint32(len(blob))}
	}
	if len(b.imports) > 0 {
		rva := b.importsRVA(secs)
		blob, dirSize, _ := BuildImportBlob(b.imports, rva)
		secs = append(secs, builderSection{
			name:  "INIT",
			data:  blob,
			chars: ScnCntInitializedData | ScnMemRead | ScnMemDiscardable,
		})
		importDir = DataDirectory{VirtualAddress: rva, Size: dirSize}
	}
	if len(b.relocSites) > 0 {
		table := BuildRelocTable(b.relocSites)
		rva := b.rvaAfter(secs, b.headersRVA())
		secs = append(secs, builderSection{
			name:  ".reloc",
			data:  table,
			chars: ScnCntInitializedData | ScnMemRead | ScnMemDiscardable,
		})
		relocDir = DataDirectory{VirtualAddress: rva, Size: uint32(len(table))}
	}

	img := &Image{
		DOS: DOSHeader{
			EMagic:    DOSMagic,
			ECblp:     0x90,
			ECp:       3,
			ECparhdr:  4,
			EMaxalloc: 0xFFFF,
			ESP:       0xB8,
			ELfarlc:   0x40,
			ELfanew:   uint32(DOSHeaderSize + len(b.dosStub)),
		},
		DOSStub: append([]byte(nil), b.dosStub...),
		File: FileHeader{
			Machine:              MachineI386,
			NumberOfSections:     uint16(len(secs)),
			TimeDateStamp:        b.timestamp,
			SizeOfOptionalHeader: OptionalHeader32Size,
			Characteristics:      b.chars,
		},
		Optional: OptionalHeader32{
			Magic:                       OptionalMagic32,
			MajorLinkerVersion:          7,
			MinorLinkerVersion:          10,
			ImageBase:                   b.imageBase,
			SectionAlignment:            DefaultSectionAlignment,
			FileAlignment:               b.fileAlign,
			MajorOperatingSystemVersion: 5,
			MinorOperatingSystemVersion: 1, // Windows XP
			MajorSubsystemVersion:       5,
			MinorSubsystemVersion:       1,
			Subsystem:                   b.subsystem,
			NumberOfRvaAndSizes:         NumDataDirectories,
			AddressOfEntryPoint:         b.entryPoint,
		},
	}
	img.Optional.DataDirectory[DirExport] = exportDir
	img.Optional.DataDirectory[DirImport] = importDir
	img.Optional.DataDirectory[DirBaseReloc] = relocDir

	headerBytes := uint32(DOSHeaderSize+len(b.dosStub)) + 4 + FileHeaderSize +
		OptionalHeader32Size + uint32(len(secs))*SectionHeaderSize
	img.Optional.SizeOfHeaders = align(headerBytes, b.fileAlign)

	rva := b.headersRVA()
	fileOff := img.Optional.SizeOfHeaders
	var sizeOfCode, sizeOfData uint32
	for _, s := range secs {
		vs := s.virtualSize
		if vs == 0 {
			vs = uint32(len(s.data))
		}
		raw := align(uint32(len(s.data)), b.fileAlign)
		data := make([]byte, raw)
		copy(data, s.data)
		var h SectionHeader
		h.SetName(s.name)
		h.VirtualSize = vs
		h.VirtualAddress = rva
		h.SizeOfRawData = raw
		h.PointerToRawData = fileOff
		h.Characteristics = s.chars
		img.Sections = append(img.Sections, Section{Header: h, Data: data})

		if s.chars&(ScnCntCode|ScnMemExecute) != 0 {
			if img.Optional.BaseOfCode == 0 {
				img.Optional.BaseOfCode = rva
			}
			sizeOfCode += raw
		} else if s.chars&ScnCntInitializedData != 0 {
			if img.Optional.BaseOfData == 0 {
				img.Optional.BaseOfData = rva
			}
			sizeOfData += raw
		}
		rva += align(maxU32(vs, raw), DefaultSectionAlignment)
		fileOff += raw
	}
	img.Optional.SizeOfCode = sizeOfCode
	img.Optional.SizeOfInitializedData = sizeOfData
	img.Optional.SizeOfImage = rva
	if img.Optional.AddressOfEntryPoint == 0 && img.Optional.BaseOfCode != 0 {
		img.Optional.AddressOfEntryPoint = img.Optional.BaseOfCode
	}
	img.Optional.CheckSum = 0
	raw, err := img.Bytes()
	if err != nil {
		return nil, fmt.Errorf("pe: build: %w", err)
	}
	img.Optional.CheckSum = Checksum(raw, checksumFieldOffset(img))
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("pe: build: %w", err)
	}
	return img, nil
}

// importsRVA computes where the INIT (imports) section will land given the
// sections added so far.
func (b *Builder) importsRVA(secs []builderSection) uint32 {
	return b.rvaAfter(secs, b.headersRVA())
}

func (b *Builder) rvaAfter(secs []builderSection, start uint32) uint32 {
	rva := start
	for _, s := range secs {
		vs := s.virtualSize
		if vs == 0 {
			vs = uint32(len(s.data))
		}
		raw := align(uint32(len(s.data)), b.fileAlign)
		rva += align(maxU32(vs, raw), DefaultSectionAlignment)
	}
	return rva
}

// checksumFieldOffset returns the file offset of the optional header's
// CheckSum field, which the PE checksum algorithm must skip.
func checksumFieldOffset(img *Image) uint32 {
	// e_lfanew + signature(4) + file header(20) + offset of CheckSum within
	// the optional header (64).
	return img.DOS.ELfanew + 4 + FileHeaderSize + 64
}

// Checksum computes the standard PE image checksum over raw, treating the
// 4 bytes at skipOff (the CheckSum field itself) as zero. The algorithm is
// a 16-bit ones'-complement sum folded into 32 bits plus the file length,
// as implemented by CheckSumMappedFile.
func Checksum(raw []byte, skipOff uint32) uint32 {
	var sum uint64
	for i := 0; i+1 < len(raw); i += 2 {
		if uint32(i) == skipOff || uint32(i) == skipOff+2 {
			continue
		}
		w := uint64(raw[i]) | uint64(raw[i+1])<<8
		sum += w
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	if len(raw)%2 == 1 {
		sum += uint64(raw[len(raw)-1])
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	sum = (sum & 0xFFFF) + (sum >> 16)
	return uint32(sum) + uint32(len(raw))
}
