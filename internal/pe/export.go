package pe

import (
	"encoding/binary"
	"sort"
)

// Export describes an image's export directory: the DLL's own name and the
// functions it exposes. The paper's E4 experiment attaches an inject.dll
// "exporting a callMessageBox() procedure" to a driver; BuildInjectDLL
// produces exactly such an image.
type Export struct {
	DLLName   string
	Functions []ExportedFunction
}

// ExportedFunction is one export: a name and the RVA of its code.
type ExportedFunction struct {
	Name string
	RVA  uint32
}

// exportDirectorySize is sizeof(IMAGE_EXPORT_DIRECTORY).
const exportDirectorySize = 40

// BuildExportBlob serializes an export directory assuming it will be
// mapped at baseRVA. Layout: IMAGE_EXPORT_DIRECTORY, address table, name
// pointer table, ordinal table, name strings, DLL name.
func BuildExportBlob(exp Export, baseRVA uint32) []byte {
	le := binary.LittleEndian
	fns := append([]ExportedFunction(nil), exp.Functions...)
	// Name pointer table must be lexically sorted so binary search works,
	// as the real loader requires.
	sort.Slice(fns, func(i, j int) bool { return fns[i].Name < fns[j].Name })

	n := uint32(len(fns))
	addrTable := uint32(exportDirectorySize)
	namePtrTable := addrTable + 4*n
	ordTable := namePtrTable + 4*n
	strOff := ordTable + 2*n

	nameOffsets := make([]uint32, n)
	off := strOff
	for i, f := range fns {
		nameOffsets[i] = off
		off += uint32(len(f.Name) + 1)
	}
	dllNameOff := off
	off += uint32(len(exp.DLLName) + 1)

	blob := make([]byte, off)
	// IMAGE_EXPORT_DIRECTORY.
	le.PutUint32(blob[12:], baseRVA+dllNameOff) // Name
	le.PutUint32(blob[16:], 1)                  // Base (first ordinal)
	le.PutUint32(blob[20:], n)                  // NumberOfFunctions
	le.PutUint32(blob[24:], n)                  // NumberOfNames
	le.PutUint32(blob[28:], baseRVA+addrTable)
	le.PutUint32(blob[32:], baseRVA+namePtrTable)
	le.PutUint32(blob[36:], baseRVA+ordTable)
	for i, f := range fns {
		le.PutUint32(blob[addrTable+4*uint32(i):], f.RVA)
		le.PutUint32(blob[namePtrTable+4*uint32(i):], baseRVA+nameOffsets[i])
		le.PutUint16(blob[ordTable+2*uint32(i):], uint16(i))
		copy(blob[nameOffsets[i]:], f.Name)
	}
	copy(blob[dllNameOff:], exp.DLLName)
	return blob
}

// SetExports records the functions the built image exports. Build emits an
// .edata section and points the export data directory at it.
func (b *Builder) SetExports(exp Export) { b.exports = &exp }

// ParseExports decodes the image's export directory. Images without one
// return the zero Export.
func (img *Image) ParseExports() (Export, error) {
	dir := img.Optional.DataDirectory[DirExport]
	var out Export
	if dir.VirtualAddress == 0 {
		return out, nil
	}
	le := binary.LittleEndian
	d, err := img.readVirtual(dir.VirtualAddress, exportDirectorySize)
	if err != nil {
		return out, err
	}
	nameRVA := le.Uint32(d[12:])
	n := le.Uint32(d[24:])
	addrTable := le.Uint32(d[28:])
	namePtrTable := le.Uint32(d[32:])
	ordTable := le.Uint32(d[36:])

	if out.DLLName, err = img.readCString(nameRVA); err != nil {
		return out, err
	}
	for i := uint32(0); i < n; i++ {
		np, err := img.readVirtual(namePtrTable+4*i, 4)
		if err != nil {
			return out, err
		}
		fname, err := img.readCString(le.Uint32(np))
		if err != nil {
			return out, err
		}
		ob, err := img.readVirtual(ordTable+2*i, 2)
		if err != nil {
			return out, err
		}
		ord := le.Uint16(ob)
		ab, err := img.readVirtual(addrTable+4*uint32(ord), 4)
		if err != nil {
			return out, err
		}
		out.Functions = append(out.Functions, ExportedFunction{Name: fname, RVA: le.Uint32(ab)})
	}
	return out, nil
}

// ExportRVA returns the RVA of a named export, or false.
func (img *Image) ExportRVA(fn string) (uint32, bool) {
	exp, err := img.ParseExports()
	if err != nil {
		return 0, false
	}
	for _, f := range exp.Functions {
		if f.Name == fn {
			return f.RVA, true
		}
	}
	return 0, false
}
