package pe

import (
	"reflect"
	"testing"
)

func buildExportImage(t testing.TB) *Image {
	t.Helper()
	b := NewBuilder(0x10000)
	code := make([]byte, 0x300)
	code[0] = 0xC3    // ret at function 0
	code[0x40] = 0xC3 // ret at function 1
	code[0x80] = 0xC3
	b.AddSection(".text", code, ScnCntCode|ScnMemExecute|ScnMemRead)
	b.SetDLL()
	b.SetExports(Export{
		DLLName: "inject.dll",
		Functions: []ExportedFunction{
			{Name: "callMessageBox", RVA: 0x1000},
			{Name: "aHelper", RVA: 0x1040},
			{Name: "zCleanup", RVA: 0x1080},
		},
	})
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestExportsRoundTrip(t *testing.T) {
	img := buildExportImage(t)
	exp, err := img.ParseExports()
	if err != nil {
		t.Fatal(err)
	}
	if exp.DLLName != "inject.dll" {
		t.Errorf("DLLName = %q", exp.DLLName)
	}
	want := map[string]uint32{"callMessageBox": 0x1000, "aHelper": 0x1040, "zCleanup": 0x1080}
	if len(exp.Functions) != len(want) {
		t.Fatalf("%d exports", len(exp.Functions))
	}
	for _, f := range exp.Functions {
		if want[f.Name] != f.RVA {
			t.Errorf("%s -> %#x, want %#x", f.Name, f.RVA, want[f.Name])
		}
	}
}

func TestExportsSortedNames(t *testing.T) {
	img := buildExportImage(t)
	exp, _ := img.ParseExports()
	names := make([]string, len(exp.Functions))
	for i, f := range exp.Functions {
		names[i] = f.Name
	}
	// Name pointer table is emitted sorted; ParseExports walks it in order.
	want := []string{"aHelper", "callMessageBox", "zCleanup"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("names = %v, want sorted %v", names, want)
	}
}

func TestExportsSurviveSerialization(t *testing.T) {
	img := buildExportImage(t)
	raw, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	rva, ok := back.ExportRVA("callMessageBox")
	if !ok || rva != 0x1000 {
		t.Errorf("ExportRVA = %#x, %v", rva, ok)
	}
}

func TestExportRVAMissing(t *testing.T) {
	img := buildExportImage(t)
	if _, ok := img.ExportRVA("nope"); ok {
		t.Error("found bogus export")
	}
	plain := buildTestImage(t)
	if _, ok := plain.ExportRVA("callMessageBox"); ok {
		t.Error("export found in image without export directory")
	}
	exp, err := plain.ParseExports()
	if err != nil || exp.DLLName != "" {
		t.Errorf("ParseExports on plain image = %+v, %v", exp, err)
	}
}

func TestEdataSectionEmitted(t *testing.T) {
	img := buildExportImage(t)
	ed := img.Section(".edata")
	if ed == nil {
		t.Fatal(".edata missing")
	}
	dir := img.Optional.DataDirectory[DirExport]
	if dir.VirtualAddress != ed.Header.VirtualAddress {
		t.Errorf("export dir RVA %#x != .edata RVA %#x", dir.VirtualAddress, ed.Header.VirtualAddress)
	}
}
