package pe

import (
	"testing"
)

// FuzzParse hardens the PE parser against arbitrary bytes: introspection
// reads memory from potentially compromised guests, so Parse must never
// panic, only return errors. Run with `go test -fuzz=FuzzParse ./internal/pe`;
// the seed corpus alone runs on every `go test`.
func FuzzParse(f *testing.F) {
	img, err := (&Image{}).buildSeed()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add([]byte{})
	f.Add([]byte("MZ"))
	f.Add(make([]byte, DOSHeaderSize))
	// A valid header prefix with garbage after.
	trunc := append([]byte(nil), img[:200]...)
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Parse(data)
		if err != nil {
			return
		}
		// Anything that parses must re-serialize and re-parse.
		raw, err := parsed.Bytes()
		if err != nil {
			t.Fatalf("parsed image fails to serialize: %v", err)
		}
		if _, err := Parse(raw); err != nil {
			t.Fatalf("round-tripped image fails to parse: %v", err)
		}
	})
}

// buildSeed creates a valid image for the fuzz corpus.
func (*Image) buildSeed() ([]byte, error) {
	b := NewBuilder(0x10000)
	code := make([]byte, 0x220)
	code[0] = 0xC3
	b.AddSection(".text", code, ScnCntCode|ScnMemExecute|ScnMemRead)
	b.SetImports([]Import{{DLL: "ntoskrnl.exe", Functions: []string{"ZwClose"}}})
	b.SetRelocSites([]uint32{0x1004})
	img, err := b.Build()
	if err != nil {
		return nil, err
	}
	return img.Bytes()
}

// FuzzParseRelocTable hardens the relocation-table parser: malicious
// modules control their own .reloc contents.
func FuzzParseRelocTable(f *testing.F) {
	f.Add(BuildRelocTable([]uint32{0x1004, 0x2008, 0x2010}))
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		sites, err := ParseRelocTable(data)
		if err != nil {
			return
		}
		for i := 1; i < len(sites); i++ {
			if sites[i] < sites[i-1] {
				t.Fatal("sites not sorted")
			}
		}
	})
}

// FuzzParseImports exercises the import-directory walker with a corrupted
// directory grafted into an otherwise valid image.
func FuzzParseImports(f *testing.F) {
	seed, err := (&Image{}).buildSeed()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, uint32(0))
	f.Fuzz(func(t *testing.T, data []byte, flip uint32) {
		img, err := Parse(data)
		if err != nil {
			return
		}
		// Corrupt one byte of the section holding the import directory.
		if dir := img.Optional.DataDirectory[DirImport]; dir.VirtualAddress != 0 {
			if sec := img.SectionAt(dir.VirtualAddress); sec != nil && len(sec.Data) > 0 {
				sec.Data[int(flip)%len(sec.Data)] ^= 0xFF
			}
		}
		// Must not panic; errors are fine.
		_, _ = img.ParseImports()
		_, _ = img.ParseExports()
		_, _ = img.RelocSites()
	})
}
