package pe

import (
	"encoding/binary"
)

// Import describes one imported DLL and the functions bound from it. The
// DLL-hooking experiment (paper Section V-B.4) attaches an extra Import
// ("inject.dll" exporting callMessageBox) to a driver, which grows the
// import directory, shifts section layout and changes several header
// hashes.
type Import struct {
	DLL       string
	Functions []string
}

// importDescriptorSize is the size of IMAGE_IMPORT_DESCRIPTOR.
const importDescriptorSize = 20

// BuildImportBlob serializes an import directory for the given imports,
// assuming the blob will be mapped at baseRVA. It returns the raw bytes,
// the size of the descriptor array (the import data directory's Size), and
// the RVA of each imported function's FirstThunk slot ("dll!fn" keys) —
// the address code calls through (CALL [thunk]).
//
// Layout: descriptor array (terminated by an all-zero descriptor), then per
// DLL an OriginalFirstThunk array, a FirstThunk array (identical before
// binding), the IMAGE_IMPORT_BY_NAME hint/name entries, and finally the DLL
// name strings.
func BuildImportBlob(imports []Import, baseRVA uint32) (blob []byte, dirSize uint32, thunks map[string]uint32) {
	le := binary.LittleEndian
	nDesc := len(imports) + 1
	descBytes := nDesc * importDescriptorSize

	// First pass: compute offsets of each piece relative to blob start.
	type layout struct {
		oft, ft uint32   // thunk array offsets
		names   []uint32 // hint/name entry offsets, one per function
		dllName uint32
	}
	lays := make([]layout, len(imports))
	off := uint32(descBytes)
	for i, imp := range imports {
		thunks := uint32(len(imp.Functions)+1) * 4
		lays[i].oft = off
		off += thunks
		lays[i].ft = off
		off += thunks
	}
	for i, imp := range imports {
		lays[i].names = make([]uint32, len(imp.Functions))
		for j, fn := range imp.Functions {
			lays[i].names[j] = off
			n := uint32(2 + len(fn) + 1) // hint + name + NUL
			if n%2 == 1 {
				n++
			}
			off += n
		}
	}
	for i, imp := range imports {
		lays[i].dllName = off
		off += uint32(len(imp.DLL) + 1)
	}

	blob = make([]byte, off)
	thunks = make(map[string]uint32)
	for i, imp := range imports {
		for j, fn := range imp.Functions {
			thunks[imp.DLL+"!"+fn] = baseRVA + lays[i].ft + uint32(4*j)
		}
	}
	for i := range imports {
		d := blob[i*importDescriptorSize:]
		le.PutUint32(d[0:], baseRVA+lays[i].oft) // OriginalFirstThunk
		le.PutUint32(d[4:], 0)                   // TimeDateStamp
		le.PutUint32(d[8:], 0)                   // ForwarderChain
		le.PutUint32(d[12:], baseRVA+lays[i].dllName)
		le.PutUint32(d[16:], baseRVA+lays[i].ft) // FirstThunk
	}
	for i, imp := range imports {
		for j := range imp.Functions {
			rva := baseRVA + lays[i].names[j]
			le.PutUint32(blob[lays[i].oft+uint32(4*j):], rva)
			le.PutUint32(blob[lays[i].ft+uint32(4*j):], rva)
		}
		// Thunk arrays are zero-terminated; the terminator bytes are
		// already zero.
		for j, fn := range imp.Functions {
			p := lays[i].names[j]
			le.PutUint16(blob[p:], uint16(j)) // hint
			copy(blob[p+2:], fn)
		}
		copy(blob[lays[i].dllName:], imp.DLL)
	}
	return blob, uint32(descBytes), thunks
}

// ParseImports decodes the image's import directory into Import values.
// Images with no import directory return nil.
func (img *Image) ParseImports() ([]Import, error) {
	dir := img.Optional.DataDirectory[DirImport]
	if dir.VirtualAddress == 0 {
		return nil, nil
	}
	le := binary.LittleEndian
	var out []Import
	for i := 0; ; i++ {
		desc, err := img.readVirtual(dir.VirtualAddress+uint32(i*importDescriptorSize), importDescriptorSize)
		if err != nil {
			return nil, err
		}
		oft := le.Uint32(desc[0:])
		nameRVA := le.Uint32(desc[12:])
		ft := le.Uint32(desc[16:])
		if oft == 0 && nameRVA == 0 && ft == 0 {
			break // terminating descriptor
		}
		dll, err := img.readCString(nameRVA)
		if err != nil {
			return nil, err
		}
		imp := Import{DLL: dll}
		thunkRVA := oft
		if thunkRVA == 0 {
			thunkRVA = ft
		}
		for j := 0; ; j++ {
			t, err := img.readVirtual(thunkRVA+uint32(4*j), 4)
			if err != nil {
				return nil, err
			}
			entry := le.Uint32(t)
			if entry == 0 {
				break
			}
			fn, err := img.readCString(entry + 2) // skip hint
			if err != nil {
				return nil, err
			}
			imp.Functions = append(imp.Functions, fn)
		}
		out = append(out, imp)
	}
	return out, nil
}

// ImportThunkRVA returns the RVA of the FirstThunk slot for dll!fn — the
// address CALL [thunk] instructions dispatch through — by walking the
// image's import directory. ok is false when the import is absent.
func (img *Image) ImportThunkRVA(dll, fn string) (rva uint32, ok bool) {
	dir := img.Optional.DataDirectory[DirImport]
	if dir.VirtualAddress == 0 {
		return 0, false
	}
	le := leUint32
	for i := 0; ; i++ {
		desc, err := img.readVirtual(dir.VirtualAddress+uint32(i*importDescriptorSize), importDescriptorSize)
		if err != nil {
			return 0, false
		}
		nameRVA := le(desc[12:])
		ft := le(desc[16:])
		if le(desc[0:]) == 0 && nameRVA == 0 && ft == 0 {
			return 0, false
		}
		name, err := img.readCString(nameRVA)
		if err != nil || name != dll {
			continue
		}
		for j := 0; ; j++ {
			t, err := img.readVirtual(ft+uint32(4*j), 4)
			if err != nil || le(t) == 0 {
				break
			}
			fnName, err := img.readCString(le(t) + 2)
			if err == nil && fnName == fn {
				return ft + uint32(4*j), true
			}
		}
	}
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// readVirtual reads n bytes at the given RVA out of the section that
// contains it.
func (img *Image) readVirtual(rva uint32, n int) ([]byte, error) {
	sec := img.SectionAt(rva)
	if sec == nil {
		return nil, formatErr("RVA %#x not inside any section", rva)
	}
	off := rva - sec.Header.VirtualAddress
	if uint64(off)+uint64(n) > uint64(len(sec.Data)) {
		return nil, formatErr("read of %d bytes at RVA %#x exceeds section %q",
			n, rva, sec.Header.NameString())
	}
	return sec.Data[off : off+uint32(n)], nil
}

// readCString reads a NUL-terminated string at the given RVA.
func (img *Image) readCString(rva uint32) (string, error) {
	sec := img.SectionAt(rva)
	if sec == nil {
		return "", formatErr("string RVA %#x not inside any section", rva)
	}
	off := rva - sec.Header.VirtualAddress
	for end := off; end < uint32(len(sec.Data)); end++ {
		if sec.Data[end] == 0 {
			return string(sec.Data[off:end]), nil
		}
	}
	return "", formatErr("unterminated string at RVA %#x", rva)
}
