package pe

import (
	"reflect"
	"testing"
)

var testImports = []Import{
	{DLL: "ntoskrnl.exe", Functions: []string{"IoCreateDevice", "ZwClose", "ExAllocatePoolWithTag"}},
	{DLL: "hal.dll", Functions: []string{"KfAcquireSpinLock"}},
}

func buildImportImage(t testing.TB, imports []Import) *Image {
	t.Helper()
	b := NewBuilder(0x10000)
	b.AddSection(".text", make([]byte, 0x200), ScnCntCode|ScnMemExecute|ScnMemRead)
	b.SetImports(imports)
	img, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return img
}

func TestImportsRoundTrip(t *testing.T) {
	img := buildImportImage(t, testImports)
	back, err := img.ParseImports()
	if err != nil {
		t.Fatalf("ParseImports: %v", err)
	}
	if !reflect.DeepEqual(back, testImports) {
		t.Errorf("got %+v, want %+v", back, testImports)
	}
}

func TestImportsRoundTripAfterSerialize(t *testing.T) {
	img := buildImportImage(t, testImports)
	raw, _ := img.Bytes()
	parsed, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parsed.ParseImports()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, testImports) {
		t.Errorf("got %+v, want %+v", back, testImports)
	}
}

func TestImportsAbsent(t *testing.T) {
	b := NewBuilder(0x10000)
	b.AddSection(".text", make([]byte, 0x100), ScnCntCode|ScnMemExecute|ScnMemRead)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	back, err := img.ParseImports()
	if err != nil || back != nil {
		t.Errorf("ParseImports = %v, %v; want nil, nil", back, err)
	}
}

func TestImportDirectorySize(t *testing.T) {
	img := buildImportImage(t, testImports)
	dir := img.Optional.DataDirectory[DirImport]
	// 2 imports + terminator = 3 descriptors.
	if dir.Size != 3*importDescriptorSize {
		t.Errorf("import dir size = %d, want %d", dir.Size, 3*importDescriptorSize)
	}
	if img.SectionAt(dir.VirtualAddress) == nil {
		t.Error("import directory RVA outside all sections")
	}
}

func TestBuildImportBlobThunks(t *testing.T) {
	blob, _, thunks := BuildImportBlob(testImports, 0x3000)
	if len(blob) == 0 {
		t.Fatal("empty blob")
	}
	for _, imp := range testImports {
		for _, fn := range imp.Functions {
			rva, ok := thunks[imp.DLL+"!"+fn]
			if !ok {
				t.Errorf("no thunk for %s!%s", imp.DLL, fn)
				continue
			}
			if rva < 0x3000 || rva >= 0x3000+uint32(len(blob)) {
				t.Errorf("thunk %s!%s RVA %#x outside blob", imp.DLL, fn, rva)
			}
		}
	}
	// Thunk slots must be distinct.
	seen := map[uint32]string{}
	for k, v := range thunks {
		if prev, dup := seen[v]; dup {
			t.Errorf("thunk RVA %#x shared by %s and %s", v, prev, k)
		}
		seen[v] = k
	}
}

func TestImportThunkRVA(t *testing.T) {
	img := buildImportImage(t, testImports)
	rva, ok := img.ImportThunkRVA("ntoskrnl.exe", "ZwClose")
	if !ok {
		t.Fatal("ZwClose thunk not found")
	}
	// The thunk slot holds the RVA of the hint/name entry whose name reads
	// "ZwClose".
	slot, err := img.readVirtual(rva, 4)
	if err != nil {
		t.Fatal(err)
	}
	nameRVA := leUint32(slot)
	name, err := img.readCString(nameRVA + 2)
	if err != nil {
		t.Fatal(err)
	}
	if name != "ZwClose" {
		t.Errorf("thunk resolves to %q", name)
	}
}

func TestImportThunkRVAMissing(t *testing.T) {
	img := buildImportImage(t, testImports)
	if _, ok := img.ImportThunkRVA("ntoskrnl.exe", "NoSuchFn"); ok {
		t.Error("found thunk for nonexistent function")
	}
	if _, ok := img.ImportThunkRVA("nosuch.dll", "ZwClose"); ok {
		t.Error("found thunk for nonexistent dll")
	}
}

func TestImportsGrowthShiftsDirectory(t *testing.T) {
	// Adding a DLL (the E4 infection) must grow the descriptor array and
	// change the INIT section's content.
	a := buildImportImage(t, testImports)
	grown := append(append([]Import(nil), testImports...), Import{DLL: "inject.dll", Functions: []string{"callMessageBox"}})
	b := buildImportImage(t, grown)
	if b.Optional.DataDirectory[DirImport].Size <= a.Optional.DataDirectory[DirImport].Size {
		t.Error("import directory did not grow")
	}
	ia, ib := a.Section("INIT"), b.Section("INIT")
	if ia == nil || ib == nil {
		t.Fatal("INIT missing")
	}
	if ia.Header.VirtualSize >= ib.Header.VirtualSize {
		t.Error("INIT virtual size did not grow")
	}
}
