package pe

// Layout maps the image the way the kernel module loader does: a buffer of
// SizeOfImage bytes indexed by RVA, with the headers at offset 0 and each
// section's raw data copied to its VirtualAddress (tails beyond
// SizeOfRawData zero-filled). No relocations are applied; call
// ApplyRelocations with the load delta afterwards.
func (img *Image) Layout() ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	mem := make([]byte, img.Optional.SizeOfImage)

	// Headers occupy the front of the mapping exactly as they appear on
	// disk (truncated to SizeOfHeaders).
	raw, err := img.Bytes()
	if err != nil {
		return nil, err
	}
	hdr := img.Optional.SizeOfHeaders
	if uint32(len(raw)) < hdr {
		hdr = uint32(len(raw))
	}
	copy(mem, raw[:hdr])

	for i := range img.Sections {
		h := &img.Sections[i].Header
		n := h.SizeOfRawData
		if h.VirtualSize != 0 && h.VirtualSize < n {
			n = h.VirtualSize // loader maps at most VirtualSize bytes
		}
		if uint64(h.VirtualAddress)+uint64(n) > uint64(len(mem)) {
			return nil, formatErr("section %q extends past SizeOfImage", h.NameString())
		}
		copy(mem[h.VirtualAddress:h.VirtualAddress+n], img.Sections[i].Data[:n])
	}
	return mem, nil
}

// LayoutAt maps the image and relocates it for a load at base. It returns
// the relocated in-memory representation, exactly what a VM's guest memory
// holds for this module.
func (img *Image) LayoutAt(base uint32) ([]byte, error) {
	mem, err := img.Layout()
	if err != nil {
		return nil, err
	}
	if base != img.Optional.ImageBase {
		sites, err := img.RelocSites()
		if err != nil {
			return nil, err
		}
		if err := ApplyRelocations(mem, sites, base-img.Optional.ImageBase); err != nil {
			return nil, err
		}
	}
	return mem, nil
}
