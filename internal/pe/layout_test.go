package pe

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestLayoutSize(t *testing.T) {
	img := buildTestImage(t)
	mem, err := img.Layout()
	if err != nil {
		t.Fatal(err)
	}
	if uint32(len(mem)) != img.Optional.SizeOfImage {
		t.Errorf("layout is %#x bytes, want SizeOfImage %#x", len(mem), img.Optional.SizeOfImage)
	}
}

func TestLayoutHeadersVerbatim(t *testing.T) {
	img := buildTestImage(t)
	mem, _ := img.Layout()
	raw, _ := img.Bytes()
	if !bytes.Equal(mem[:img.Optional.SizeOfHeaders], raw[:img.Optional.SizeOfHeaders]) {
		t.Error("mapped headers differ from file headers")
	}
}

func TestLayoutSectionsAtRVA(t *testing.T) {
	img := buildTestImage(t)
	mem, _ := img.Layout()
	for i := range img.Sections {
		h := &img.Sections[i].Header
		n := h.SizeOfRawData
		if h.VirtualSize != 0 && h.VirtualSize < n {
			n = h.VirtualSize
		}
		if !bytes.Equal(mem[h.VirtualAddress:h.VirtualAddress+n], img.Sections[i].Data[:n]) {
			t.Errorf("section %q not mapped at its RVA", h.NameString())
		}
	}
}

func TestLayoutGapsZero(t *testing.T) {
	img := buildTestImage(t)
	mem, _ := img.Layout()
	// Bytes between SizeOfHeaders and the first section must be zero.
	for i := img.Optional.SizeOfHeaders; i < img.Sections[0].Header.VirtualAddress; i++ {
		if mem[i] != 0 {
			t.Fatalf("gap byte %#x nonzero", i)
		}
	}
}

func TestLayoutAtPreferredBaseIsUnrelocated(t *testing.T) {
	img := buildTestImage(t)
	plain, _ := img.Layout()
	at, err := img.LayoutAt(img.Optional.ImageBase)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, at) {
		t.Error("LayoutAt(preferred base) differs from Layout")
	}
}

func TestLayoutAtRelocates(t *testing.T) {
	img := buildTestImage(t)
	const newBase = 0xF8CC2000
	mem, err := img.LayoutAt(newBase)
	if err != nil {
		t.Fatal(err)
	}
	// The single reloc site at RVA 0x1004 held preferred+0x2000.
	got := binary.LittleEndian.Uint32(mem[0x1004:])
	want := uint32(newBase + 0x2000)
	if got != want {
		t.Errorf("relocated operand = %#x, want %#x", got, want)
	}
	// Everything except the 4 relocated bytes matches the plain layout.
	plain, _ := img.Layout()
	diff := 0
	for i := range mem {
		if mem[i] != plain[i] {
			diff++
		}
	}
	if diff == 0 || diff > 4 {
		t.Errorf("%d bytes differ after relocation, want 1..4", diff)
	}
}

// TestLayoutAtTwoBasesRVAInvariant property-tests the core ModChecker
// invariant: for any two load bases, subtracting each base at the reloc
// sites yields identical bytes.
func TestLayoutAtTwoBasesRVAInvariant(t *testing.T) {
	img := buildTestImage(t)
	sites, _ := img.RelocSites()
	f := func(a, b uint16) bool {
		base1 := 0xF8000000 + uint32(a)*0x1000
		base2 := 0xF8000000 + uint32(b)*0x1000
		m1, err1 := img.LayoutAt(base1)
		m2, err2 := img.LayoutAt(base2)
		if err1 != nil || err2 != nil {
			return false
		}
		if err := ApplyRelocations(m1, sites, -base1); err != nil {
			return false
		}
		if err := ApplyRelocations(m2, sites, -base2); err != nil {
			return false
		}
		return bytes.Equal(m1, m2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
