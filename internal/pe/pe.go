// Package pe implements the 32-bit Portable Executable (PE32) image format
// used by Windows kernel modules (.sys drivers and kernel-mode DLLs).
//
// The package is a from-scratch, byte-exact implementation of the subset of
// the format that the ModChecker paper exercises: the DOS header and stub,
// the NT headers (signature, file header, optional header and its data
// directories), the section table, section raw data, the base-relocation
// (.reloc) table, and a structurally faithful import directory. Images can
// be built (Builder), serialized to their on-disk byte representation
// (Image.Bytes), parsed back (Parse), laid out in memory the way the kernel
// module loader maps them (Layout), and relocated to an arbitrary base
// address (ApplyRelocations).
//
// All multi-byte fields are little-endian, as on x86.
package pe

import (
	"errors"
	"fmt"
)

// Magic numbers and well-known constants of the PE32 format.
const (
	// DOSMagic is the IMAGE_DOS_SIGNATURE "MZ" that opens every PE image.
	DOSMagic = 0x5A4D
	// NTSignature is the IMAGE_NT_SIGNATURE "PE\0\0".
	NTSignature = 0x00004550
	// OptionalMagic32 is the IMAGE_NT_OPTIONAL_HDR32_MAGIC for PE32 images.
	OptionalMagic32 = 0x010B

	// MachineI386 identifies 32-bit x86 images.
	MachineI386 = 0x014C

	// DOSHeaderSize is the size in bytes of IMAGE_DOS_HEADER.
	DOSHeaderSize = 64
	// FileHeaderSize is the size in bytes of IMAGE_FILE_HEADER.
	FileHeaderSize = 20
	// OptionalHeader32Size is the size in bytes of IMAGE_OPTIONAL_HEADER32
	// with the full complement of 16 data directories.
	OptionalHeader32Size = 224
	// SectionHeaderSize is the size in bytes of IMAGE_SECTION_HEADER.
	SectionHeaderSize = 40
	// NumDataDirectories is IMAGE_NUMBEROF_DIRECTORY_ENTRIES.
	NumDataDirectories = 16
)

// Section characteristic flags (IMAGE_SCN_*).
const (
	ScnCntCode              = 0x00000020
	ScnCntInitializedData   = 0x00000040
	ScnCntUninitializedData = 0x00000080
	ScnMemDiscardable       = 0x02000000
	ScnMemNotCached         = 0x04000000
	ScnMemNotPaged          = 0x08000000
	ScnMemShared            = 0x10000000
	ScnMemExecute           = 0x20000000
	ScnMemRead              = 0x40000000
	ScnMemWrite             = 0x80000000
)

// Data directory indices (IMAGE_DIRECTORY_ENTRY_*).
const (
	DirExport    = 0
	DirImport    = 1
	DirResource  = 2
	DirException = 3
	DirSecurity  = 4
	DirBaseReloc = 5
	DirDebug     = 6
	DirIAT       = 12
)

// File header characteristic flags (IMAGE_FILE_*).
const (
	FileExecutableImage   = 0x0002
	FileLineNumsStripped  = 0x0004
	FileLocalSymsStripped = 0x0008
	File32BitMachine      = 0x0100
	FileDLL               = 0x2000
)

// SubsystemNative marks kernel-mode images (drivers).
const SubsystemNative = 1

// DefaultDOSStub is the text carried by the classic DOS stub program. The
// paper's experiment E3 (Section V-B.3) patches three characters of this
// string ("DOS" -> "CHK") and requires that only the DOS-header component
// hash changes.
const DefaultDOSStub = "This program cannot be run in DOS mode.\r\r\n$"

// DOSHeader is IMAGE_DOS_HEADER, the 64-byte legacy header that opens every
// PE image. Only EMagic and ELfanew matter to modern loaders; the remaining
// fields are carried verbatim so that byte-level integrity checks see the
// authentic layout.
type DOSHeader struct {
	EMagic    uint16 // "MZ"
	ECblp     uint16 // bytes on last page of file
	ECp       uint16 // pages in file
	ECrlc     uint16 // relocations
	ECparhdr  uint16 // size of header in paragraphs
	EMinalloc uint16 // minimum extra paragraphs needed
	EMaxalloc uint16 // maximum extra paragraphs needed
	ESS       uint16 // initial (relative) SS value
	ESP       uint16 // initial SP value
	ECsum     uint16 // checksum
	EIP       uint16 // initial IP value
	ECS       uint16 // initial (relative) CS value
	ELfarlc   uint16 // file address of relocation table
	EOvno     uint16 // overlay number
	ERes      [4]uint16
	EOemid    uint16
	EOeminfo  uint16
	ERes2     [10]uint16
	ELfanew   uint32 // file offset of the NT headers
}

// FileHeader is IMAGE_FILE_HEADER.
type FileHeader struct {
	Machine              uint16
	NumberOfSections     uint16
	TimeDateStamp        uint32
	PointerToSymbolTable uint32
	NumberOfSymbols      uint32
	SizeOfOptionalHeader uint16
	Characteristics      uint16
}

// DataDirectory is IMAGE_DATA_DIRECTORY: the RVA and size of one of the 16
// optional-header directory entries (import table, base-relocation table,
// and so on).
type DataDirectory struct {
	VirtualAddress uint32
	Size           uint32
}

// OptionalHeader32 is IMAGE_OPTIONAL_HEADER32 for PE32 images.
type OptionalHeader32 struct {
	Magic                       uint16
	MajorLinkerVersion          uint8
	MinorLinkerVersion          uint8
	SizeOfCode                  uint32
	SizeOfInitializedData       uint32
	SizeOfUninitializedData     uint32
	AddressOfEntryPoint         uint32
	BaseOfCode                  uint32
	BaseOfData                  uint32
	ImageBase                   uint32
	SectionAlignment            uint32
	FileAlignment               uint32
	MajorOperatingSystemVersion uint16
	MinorOperatingSystemVersion uint16
	MajorImageVersion           uint16
	MinorImageVersion           uint16
	MajorSubsystemVersion       uint16
	MinorSubsystemVersion       uint16
	Win32VersionValue           uint32
	SizeOfImage                 uint32
	SizeOfHeaders               uint32
	CheckSum                    uint32
	Subsystem                   uint16
	DllCharacteristics          uint16
	SizeOfStackReserve          uint32
	SizeOfStackCommit           uint32
	SizeOfHeapReserve           uint32
	SizeOfHeapCommit            uint32
	LoaderFlags                 uint32
	NumberOfRvaAndSizes         uint32
	DataDirectory               [NumDataDirectories]DataDirectory
}

// SectionHeader is IMAGE_SECTION_HEADER.
type SectionHeader struct {
	Name                 [8]byte
	VirtualSize          uint32
	VirtualAddress       uint32
	SizeOfRawData        uint32
	PointerToRawData     uint32
	PointerToRelocations uint32
	PointerToLinenumbers uint32
	NumberOfRelocations  uint16
	NumberOfLinenumbers  uint16
	Characteristics      uint32
}

// NameString returns the section name with trailing NUL padding stripped.
func (h *SectionHeader) NameString() string {
	n := 0
	for n < len(h.Name) && h.Name[n] != 0 {
		n++
	}
	return string(h.Name[:n])
}

// SetName stores name into the fixed 8-byte Name field, truncating if
// necessary and NUL-padding the remainder.
func (h *SectionHeader) SetName(name string) {
	var b [8]byte
	copy(b[:], name)
	h.Name = b
}

// IsExecutable reports whether the section contains executable code
// (IMAGE_SCN_MEM_EXECUTE or IMAGE_SCN_CNT_CODE). Module-Parser uses this to
// select the section data whose RVAs must be normalized before hashing.
func (h *SectionHeader) IsExecutable() bool {
	return h.Characteristics&(ScnMemExecute|ScnCntCode) != 0
}

// IsWritable reports whether the section is mapped writable.
func (h *SectionHeader) IsWritable() bool {
	return h.Characteristics&ScnMemWrite != 0
}

// Section pairs a section header with its raw (file) data. Data has
// SizeOfRawData bytes; if VirtualSize exceeds SizeOfRawData the loader
// zero-fills the tail when mapping.
type Section struct {
	Header SectionHeader
	Data   []byte
}

// Image is a complete in-file PE32 image: DOS header + stub, NT headers,
// section table and section data.
type Image struct {
	DOS      DOSHeader
	DOSStub  []byte // bytes between the DOS header and the NT headers
	File     FileHeader
	Optional OptionalHeader32
	Sections []Section
}

// ErrFormat is wrapped by all parse/validation failures in this package.
var ErrFormat = errors.New("pe: invalid image")

func formatErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFormat, fmt.Sprintf(format, args...))
}

// Section returns the section with the given name, or nil if absent.
func (img *Image) Section(name string) *Section {
	for i := range img.Sections {
		if img.Sections[i].Header.NameString() == name {
			return &img.Sections[i]
		}
	}
	return nil
}

// SectionAt returns the section whose virtual range contains rva, or nil.
func (img *Image) SectionAt(rva uint32) *Section {
	for i := range img.Sections {
		h := &img.Sections[i].Header
		size := h.VirtualSize
		if size == 0 {
			size = h.SizeOfRawData
		}
		if rva >= h.VirtualAddress && rva < h.VirtualAddress+size {
			return &img.Sections[i]
		}
	}
	return nil
}

// Validate performs structural consistency checks on the image: magic
// values, header sizes, section count, alignment and layout monotonicity.
func (img *Image) Validate() error {
	if img.DOS.EMagic != DOSMagic {
		return formatErr("bad DOS magic %#04x", img.DOS.EMagic)
	}
	if img.Optional.Magic != OptionalMagic32 {
		return formatErr("bad optional-header magic %#04x", img.Optional.Magic)
	}
	if img.File.Machine != MachineI386 {
		return formatErr("unsupported machine %#04x", img.File.Machine)
	}
	if int(img.File.NumberOfSections) != len(img.Sections) {
		return formatErr("NumberOfSections %d but %d sections present",
			img.File.NumberOfSections, len(img.Sections))
	}
	if img.File.SizeOfOptionalHeader != OptionalHeader32Size {
		return formatErr("SizeOfOptionalHeader %d, want %d",
			img.File.SizeOfOptionalHeader, OptionalHeader32Size)
	}
	if img.Optional.FileAlignment == 0 || img.Optional.SectionAlignment == 0 {
		return formatErr("zero alignment")
	}
	if img.Optional.SectionAlignment < img.Optional.FileAlignment {
		return formatErr("SectionAlignment %d < FileAlignment %d",
			img.Optional.SectionAlignment, img.Optional.FileAlignment)
	}
	prev := uint32(0)
	for i := range img.Sections {
		h := &img.Sections[i].Header
		if h.VirtualAddress%img.Optional.SectionAlignment != 0 {
			return formatErr("section %q VirtualAddress %#x not aligned",
				h.NameString(), h.VirtualAddress)
		}
		if h.VirtualAddress < prev {
			return formatErr("section %q overlaps predecessor", h.NameString())
		}
		if uint32(len(img.Sections[i].Data)) != h.SizeOfRawData {
			return formatErr("section %q has %d data bytes, header says %d",
				h.NameString(), len(img.Sections[i].Data), h.SizeOfRawData)
		}
		prev = h.VirtualAddress + align(maxU32(h.VirtualSize, h.SizeOfRawData), img.Optional.SectionAlignment)
	}
	if img.Optional.SizeOfImage < prev {
		return formatErr("SizeOfImage %#x smaller than section extent %#x",
			img.Optional.SizeOfImage, prev)
	}
	return nil
}

func align(v, a uint32) uint32 {
	if a == 0 {
		return v
	}
	return (v + a - 1) / a * a
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
