package pe

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// buildTestImage builds a small but fully featured image: code with reloc
// sites, data, imports and a .reloc section.
func buildTestImage(t testing.TB) *Image {
	t.Helper()
	b := NewBuilder(0x10000)
	code := make([]byte, 0x600)
	code[0] = 0x55                // push ebp
	code[1], code[2] = 0x8B, 0xEC // mov ebp, esp
	code[3] = 0xA1                // mov eax, [moffs32]
	// abs operand at .text+4 pointing at .data
	code[4], code[5], code[6], code[7] = 0x00, 0x20, 0x01, 0x00 // 0x12000
	code[8] = 0xC3
	data := make([]byte, 0x300)
	for i := range data {
		data[i] = byte(i)
	}
	b.AddSection(".text", code, ScnCntCode|ScnMemExecute|ScnMemRead)
	b.AddSection(".data", data, ScnCntInitializedData|ScnMemRead|ScnMemWrite)
	b.SetImports([]Import{{DLL: "ntoskrnl.exe", Functions: []string{"IoCreateDevice", "ZwClose"}}})
	b.SetRelocSites([]uint32{0x1000 + 4})
	img, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return img
}

func TestSectionHeaderName(t *testing.T) {
	var h SectionHeader
	h.SetName(".text")
	if got := h.NameString(); got != ".text" {
		t.Errorf("NameString = %q, want .text", got)
	}
}

func TestSectionHeaderNameTruncation(t *testing.T) {
	var h SectionHeader
	h.SetName(".verylongname")
	if got := h.NameString(); got != ".verylon" {
		t.Errorf("NameString = %q, want 8-byte truncation", got)
	}
}

func TestSectionHeaderNameFull8(t *testing.T) {
	var h SectionHeader
	h.SetName("12345678")
	if got := h.NameString(); got != "12345678" {
		t.Errorf("NameString = %q", got)
	}
}

func TestSectionFlags(t *testing.T) {
	h := SectionHeader{Characteristics: ScnCntCode | ScnMemExecute | ScnMemRead}
	if !h.IsExecutable() {
		t.Error("code section not executable")
	}
	if h.IsWritable() {
		t.Error("code section writable")
	}
	h = SectionHeader{Characteristics: ScnCntInitializedData | ScnMemRead | ScnMemWrite}
	if h.IsExecutable() {
		t.Error("data section executable")
	}
	if !h.IsWritable() {
		t.Error("data section not writable")
	}
}

func TestBuildValidates(t *testing.T) {
	img := buildTestImage(t)
	if err := img.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildSectionLayout(t *testing.T) {
	img := buildTestImage(t)
	// Expect .text at 0x1000, .data at 0x2000, INIT next, .reloc last.
	wantOrder := []string{".text", ".data", "INIT", ".reloc"}
	if len(img.Sections) != len(wantOrder) {
		t.Fatalf("have %d sections, want %d", len(img.Sections), len(wantOrder))
	}
	for i, name := range wantOrder {
		if got := img.Sections[i].Header.NameString(); got != name {
			t.Errorf("section %d = %q, want %q", i, got, name)
		}
	}
	if img.Sections[0].Header.VirtualAddress != 0x1000 {
		t.Errorf(".text VA = %#x, want 0x1000", img.Sections[0].Header.VirtualAddress)
	}
	if img.Sections[1].Header.VirtualAddress != 0x2000 {
		t.Errorf(".data VA = %#x, want 0x2000", img.Sections[1].Header.VirtualAddress)
	}
	for i := 1; i < len(img.Sections); i++ {
		if img.Sections[i].Header.PointerToRawData <= img.Sections[i-1].Header.PointerToRawData {
			t.Errorf("raw pointers not increasing at section %d", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	img := buildTestImage(t)
	raw, err := img.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	raw2, err := back.Bytes()
	if err != nil {
		t.Fatalf("Bytes after Parse: %v", err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("serialize -> parse -> serialize not byte-identical")
	}
}

func TestParseFieldFidelity(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	back, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.DOS.ELfanew != img.DOS.ELfanew {
		t.Errorf("ELfanew %#x != %#x", back.DOS.ELfanew, img.DOS.ELfanew)
	}
	if back.File != img.File {
		t.Errorf("file header differs: %+v vs %+v", back.File, img.File)
	}
	if back.Optional != img.Optional {
		t.Errorf("optional header differs")
	}
	if !bytes.Equal(back.DOSStub, img.DOSStub) {
		t.Error("DOS stub differs")
	}
}

func TestDOSStubContainsMessage(t *testing.T) {
	img := buildTestImage(t)
	if !strings.Contains(string(img.DOSStub), "This program cannot be run in DOS mode") {
		t.Error("DOS stub missing classic message")
	}
}

func TestMagics(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	if raw[0] != 'M' || raw[1] != 'Z' {
		t.Errorf("image does not start with MZ: % x", raw[:2])
	}
	lfanew := img.DOS.ELfanew
	if string(raw[lfanew:lfanew+2]) != "PE" {
		t.Errorf("NT signature missing at e_lfanew")
	}
}

func TestParseRejectsBadDOSMagic(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	raw[0] = 'X'
	if _, err := Parse(raw); !errors.Is(err, ErrFormat) {
		t.Errorf("Parse with bad DOS magic: err = %v, want ErrFormat", err)
	}
}

func TestParseRejectsBadNTSignature(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	raw[img.DOS.ELfanew] = 'X'
	if _, err := Parse(raw); !errors.Is(err, ErrFormat) {
		t.Errorf("Parse with bad NT signature: err = %v, want ErrFormat", err)
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	for _, n := range []int{0, 10, DOSHeaderSize, int(img.DOS.ELfanew) + 10} {
		if _, err := Parse(raw[:n]); err == nil {
			t.Errorf("Parse of %d-byte prefix succeeded", n)
		}
	}
}

func TestParseRejectsOutOfRangeLfanew(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	raw[0x3C] = 0xFF
	raw[0x3D] = 0xFF
	raw[0x3E] = 0xFF
	raw[0x3F] = 0x7F
	if _, err := Parse(raw); !errors.Is(err, ErrFormat) {
		t.Errorf("Parse with huge e_lfanew: err = %v, want ErrFormat", err)
	}
}

func TestParseRejectsSectionBeyondImage(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	// Corrupt the first section header's SizeOfRawData (offset 16 within
	// the header) to a huge value.
	secOff := img.DOS.ELfanew + 4 + FileHeaderSize + OptionalHeader32Size
	raw[secOff+16] = 0xFF
	raw[secOff+17] = 0xFF
	raw[secOff+18] = 0xFF
	if _, err := Parse(raw); !errors.Is(err, ErrFormat) {
		t.Errorf("Parse with oversized section: err = %v, want ErrFormat", err)
	}
}

func TestValidateCatchesSectionCountMismatch(t *testing.T) {
	img := buildTestImage(t)
	img.File.NumberOfSections++
	if err := img.Validate(); !errors.Is(err, ErrFormat) {
		t.Errorf("Validate: err = %v, want ErrFormat", err)
	}
}

func TestValidateCatchesUnalignedSection(t *testing.T) {
	img := buildTestImage(t)
	img.Sections[0].Header.VirtualAddress += 8
	if err := img.Validate(); !errors.Is(err, ErrFormat) {
		t.Errorf("Validate: err = %v, want ErrFormat", err)
	}
}

func TestValidateCatchesAlignmentInversion(t *testing.T) {
	img := buildTestImage(t)
	img.Optional.FileAlignment = img.Optional.SectionAlignment * 2
	if err := img.Validate(); !errors.Is(err, ErrFormat) {
		t.Errorf("Validate: err = %v, want ErrFormat", err)
	}
}

func TestSectionLookup(t *testing.T) {
	img := buildTestImage(t)
	if img.Section(".text") == nil {
		t.Fatal(".text not found")
	}
	if img.Section(".bogus") != nil {
		t.Error("nonexistent section found")
	}
	sec := img.SectionAt(0x1004)
	if sec == nil || sec.Header.NameString() != ".text" {
		t.Errorf("SectionAt(0x1004) = %v", sec)
	}
	if img.SectionAt(0x800) != nil {
		t.Error("SectionAt inside headers returned a section")
	}
	if img.SectionAt(0xFFFF0000) != nil {
		t.Error("SectionAt far beyond image returned a section")
	}
}

func TestCloneIsDeep(t *testing.T) {
	img := buildTestImage(t)
	c := img.Clone()
	c.Sections[0].Data[0] ^= 0xFF
	c.DOSStub[0] ^= 0xFF
	orig := buildTestImage(t)
	if img.Sections[0].Data[0] != orig.Sections[0].Data[0] {
		t.Error("mutating clone affected original section data")
	}
	if img.DOSStub[0] != orig.DOSStub[0] {
		t.Error("mutating clone affected original stub")
	}
}

func TestBuilderDeterminism(t *testing.T) {
	a, _ := buildTestImage(t).Bytes()
	b, _ := buildTestImage(t).Bytes()
	if !bytes.Equal(a, b) {
		t.Error("two identical builds differ")
	}
}

func TestChecksumSelfConsistent(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	want := Checksum(raw, checksumFieldOffset(img))
	if img.Optional.CheckSum != want {
		t.Errorf("stored checksum %#x != recomputed %#x", img.Optional.CheckSum, want)
	}
}

func TestChecksumDetectsFlip(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	base := Checksum(raw, checksumFieldOffset(img))
	raw[img.Sections[0].Header.PointerToRawData] ^= 0x01
	if Checksum(raw, checksumFieldOffset(img)) == base {
		t.Error("checksum unchanged after a bit flip")
	}
}

func TestChecksumIgnoresChecksumField(t *testing.T) {
	img := buildTestImage(t)
	raw, _ := img.Bytes()
	off := checksumFieldOffset(img)
	base := Checksum(raw, off)
	raw[off] ^= 0xFF
	if Checksum(raw, off) != base {
		t.Error("checksum depends on the checksum field itself")
	}
}

func TestHeadersSize(t *testing.T) {
	img := buildTestImage(t)
	want := uint32(DOSHeaderSize+len(img.DOSStub)) + 4 + FileHeaderSize +
		OptionalHeader32Size + uint32(len(img.Sections))*SectionHeaderSize
	if got := img.HeadersSize(); got != want {
		t.Errorf("HeadersSize = %d, want %d", got, want)
	}
	if img.Optional.SizeOfHeaders < want {
		t.Errorf("SizeOfHeaders %d < headers %d", img.Optional.SizeOfHeaders, want)
	}
}

func TestBytesRejectsInvalid(t *testing.T) {
	img := buildTestImage(t)
	img.File.NumberOfSections = 0
	if _, err := img.Bytes(); err == nil {
		t.Error("Bytes of invalid image succeeded")
	}
}

func TestNativeSubsystemAndMachine(t *testing.T) {
	img := buildTestImage(t)
	if img.Optional.Subsystem != SubsystemNative {
		t.Errorf("subsystem = %d, want native", img.Optional.Subsystem)
	}
	if img.File.Machine != MachineI386 {
		t.Errorf("machine = %#x, want i386", img.File.Machine)
	}
	if img.Optional.MajorOperatingSystemVersion != 5 || img.Optional.MinorOperatingSystemVersion != 1 {
		t.Error("OS version is not 5.1 (XP)")
	}
}

func TestEntryPointDefaultsToCode(t *testing.T) {
	img := buildTestImage(t)
	if img.Optional.AddressOfEntryPoint != img.Optional.BaseOfCode {
		t.Errorf("entry %#x != BaseOfCode %#x", img.Optional.AddressOfEntryPoint, img.Optional.BaseOfCode)
	}
}

func TestSetEntryPoint(t *testing.T) {
	b := NewBuilder(0x10000)
	b.AddSection(".text", make([]byte, 0x200), ScnCntCode|ScnMemExecute|ScnMemRead)
	b.SetEntryPoint(0x1040)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if img.Optional.AddressOfEntryPoint != 0x1040 {
		t.Errorf("entry = %#x", img.Optional.AddressOfEntryPoint)
	}
}

func TestVirtualSizeLargerThanRaw(t *testing.T) {
	b := NewBuilder(0x10000)
	b.AddSection(".text", make([]byte, 0x200), ScnCntCode|ScnMemExecute|ScnMemRead)
	b.AddSectionWithVirtualSize(".bss", nil, 0x2000, ScnCntUninitializedData|ScnMemRead|ScnMemWrite)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bss := img.Section(".bss")
	if bss.Header.VirtualSize != 0x2000 || bss.Header.SizeOfRawData != 0 {
		t.Errorf("bss vs=%#x raw=%#x", bss.Header.VirtualSize, bss.Header.SizeOfRawData)
	}
	if img.Optional.SizeOfImage < bss.Header.VirtualAddress+0x2000 {
		t.Error("SizeOfImage does not cover .bss")
	}
}

func TestDLLCharacteristic(t *testing.T) {
	b := NewBuilder(0x10000)
	b.SetDLL()
	b.AddSection(".text", make([]byte, 0x100), ScnCntCode|ScnMemExecute|ScnMemRead)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if img.File.Characteristics&FileDLL == 0 {
		t.Error("DLL flag not set")
	}
}

func TestCustomFileAlignment(t *testing.T) {
	mk := func(align uint32) *Image {
		b := NewBuilder(0x10000)
		if align != 0 {
			b.SetFileAlignment(align)
		}
		b.AddSection(".text", make([]byte, 0x333), ScnCntCode|ScnMemExecute|ScnMemRead)
		b.AddSection(".data", make([]byte, 0x111), ScnCntInitializedData|ScnMemRead)
		img, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	a := mk(0)      // default 0x200
	c := mk(0x1000) // rebuild alignment
	if a.Optional.FileAlignment == c.Optional.FileAlignment {
		t.Fatal("alignments equal")
	}
	// Every section's raw pointer should differ between the two builds
	// (the property the DLL-hook experiment relies on).
	for i := range a.Sections {
		if a.Sections[i].Header.PointerToRawData == c.Sections[i].Header.PointerToRawData &&
			a.Sections[i].Header.SizeOfRawData == c.Sections[i].Header.SizeOfRawData {
			t.Errorf("section %d raw layout identical across alignments", i)
		}
	}
	// Virtual layout must be preserved.
	for i := range a.Sections {
		if a.Sections[i].Header.VirtualAddress != c.Sections[i].Header.VirtualAddress {
			t.Errorf("section %d VA moved: %#x -> %#x", i,
				a.Sections[i].Header.VirtualAddress, c.Sections[i].Header.VirtualAddress)
		}
	}
}

func TestSetDOSStubRawPreserved(t *testing.T) {
	b := NewBuilder(0x10000)
	stub := buildDOSStub("Custom message here........$")
	b.SetDOSStubRaw(stub)
	b.AddSection(".text", make([]byte, 0x100), ScnCntCode|ScnMemExecute|ScnMemRead)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.DOSStub, stub) {
		t.Error("stub not preserved verbatim")
	}
}
