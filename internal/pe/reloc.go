package pe

import (
	"encoding/binary"
	"sort"
)

// Base-relocation entry types (IMAGE_REL_BASED_*).
const (
	RelBasedAbsolute = 0  // padding entry, ignored by the loader
	RelBasedHighLow  = 3  // full 32-bit address fixup (PE32)
	RelBasedDir64    = 10 // full 64-bit address fixup (PE32+)
)

// relocPageSize is the span covered by one base-relocation block.
const relocPageSize = 0x1000

// BuildRelocTable serializes a base-relocation table (the contents of the
// .reloc section) for the given fixup sites. Each site is the RVA of a
// 32-bit absolute address embedded in the image that the loader must adjust
// when the module is not loaded at its preferred ImageBase.
//
// The table is a sequence of IMAGE_BASE_RELOCATION blocks: each block has a
// 4-byte page RVA, a 4-byte block size, and a list of 2-byte entries whose
// top 4 bits are the relocation type and bottom 12 bits the offset within
// the page. Blocks are padded with an ABSOLUTE entry to a 4-byte boundary,
// exactly as linkers emit them.
func BuildRelocTable(sites []uint32) []byte {
	return BuildRelocTableTyped(sites, RelBasedHighLow)
}

// BuildRelocTableTyped is BuildRelocTable with an explicit entry type;
// PE32+ images use RelBasedDir64 for their 8-byte fixups.
func BuildRelocTableTyped(sites []uint32, typ uint16) []byte {
	if len(sites) == 0 {
		return nil
	}
	sorted := append([]uint32(nil), sites...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var out []byte
	le := binary.LittleEndian
	i := 0
	for i < len(sorted) {
		page := sorted[i] &^ (relocPageSize - 1)
		j := i
		for j < len(sorted) && sorted[j]&^(relocPageSize-1) == page {
			j++
		}
		n := j - i
		entries := n
		if entries%2 == 1 {
			entries++ // pad to 4-byte boundary with an ABSOLUTE entry
		}
		blockSize := 8 + 2*entries
		block := make([]byte, blockSize)
		le.PutUint32(block[0:], page)
		le.PutUint32(block[4:], uint32(blockSize))
		for k := 0; k < n; k++ {
			entry := typ<<12 | uint16(sorted[i+k]-page)
			le.PutUint16(block[8+2*k:], entry)
		}
		// The padding entry, if present, is already zero (ABSOLUTE, offset 0).
		out = append(out, block...)
		i = j
	}
	return out
}

// ParseRelocTable decodes a base-relocation table and returns the RVAs of
// all HIGHLOW fixup sites, in ascending order.
func ParseRelocTable(table []byte) ([]uint32, error) {
	le := binary.LittleEndian
	var sites []uint32
	off := 0
	for off+8 <= len(table) {
		page := le.Uint32(table[off:])
		size := le.Uint32(table[off+4:])
		if size == 0 && page == 0 {
			break // zero terminator emitted by some linkers
		}
		if size < 8 || off+int(size) > len(table) {
			return nil, formatErr("reloc block at %#x has bad size %d", off, size)
		}
		for p := off + 8; p+2 <= off+int(size); p += 2 {
			entry := le.Uint16(table[p:])
			typ := entry >> 12
			switch typ {
			case RelBasedAbsolute:
				// padding
			case RelBasedHighLow, RelBasedDir64:
				sites = append(sites, page+uint32(entry&0x0FFF))
			default:
				return nil, formatErr("unsupported relocation type %d", typ)
			}
		}
		off += int(size)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites, nil
}

// RelocSites parses the image's .reloc data directory and returns the RVAs
// of all HIGHLOW fixup sites. Images with no relocation directory return an
// empty slice.
func (img *Image) RelocSites() ([]uint32, error) {
	dir := img.Optional.DataDirectory[DirBaseReloc]
	if dir.VirtualAddress == 0 || dir.Size == 0 {
		return nil, nil
	}
	sec := img.SectionAt(dir.VirtualAddress)
	if sec == nil {
		return nil, formatErr("reloc directory RVA %#x not inside any section", dir.VirtualAddress)
	}
	start := dir.VirtualAddress - sec.Header.VirtualAddress
	end := start + dir.Size
	if uint64(end) > uint64(len(sec.Data)) {
		return nil, formatErr("reloc directory [%#x,%#x) exceeds section %q data",
			start, end, sec.Header.NameString())
	}
	return ParseRelocTable(sec.Data[start:end])
}

// ApplyRelocations rewrites every HIGHLOW fixup site in the mapped image
// (mem is the in-memory layout, indexed by RVA) by adding delta, the
// difference between the actual load base and the preferred ImageBase. This
// is precisely what the Windows kernel module loader does at load time, and
// what makes the same module's executable bytes differ between VMs loaded
// at different bases (the effect ModChecker's Integrity-Checker reverses).
func ApplyRelocations(mem []byte, sites []uint32, delta uint32) error {
	le := binary.LittleEndian
	for _, rva := range sites {
		if int(rva)+4 > len(mem) {
			return formatErr("relocation site %#x outside image of %#x bytes", rva, len(mem))
		}
		le.PutUint32(mem[rva:], le.Uint32(mem[rva:])+delta)
	}
	return nil
}
