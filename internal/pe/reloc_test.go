package pe

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBuildRelocTableEmpty(t *testing.T) {
	if got := BuildRelocTable(nil); got != nil {
		t.Errorf("BuildRelocTable(nil) = %v, want nil", got)
	}
}

func TestRelocTableRoundTrip(t *testing.T) {
	sites := []uint32{0x1004, 0x1010, 0x1FFC, 0x2000, 0x2008, 0x5124}
	table := BuildRelocTable(sites)
	back, err := ParseRelocTable(table)
	if err != nil {
		t.Fatalf("ParseRelocTable: %v", err)
	}
	if !reflect.DeepEqual(back, sites) {
		t.Errorf("round trip: got %v, want %v", back, sites)
	}
}

func TestRelocTableUnsortedInput(t *testing.T) {
	sites := []uint32{0x5124, 0x1010, 0x2000, 0x1004}
	table := BuildRelocTable(sites)
	back, err := ParseRelocTable(table)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]uint32(nil), sites...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !reflect.DeepEqual(back, want) {
		t.Errorf("got %v, want sorted %v", back, want)
	}
}

func TestRelocTableBlockStructure(t *testing.T) {
	// One site in page 0x1000, three in page 0x3000.
	sites := []uint32{0x1008, 0x3000, 0x3004, 0x3FF8}
	table := BuildRelocTable(sites)
	le := binary.LittleEndian

	// Block 1: page 0x1000, 1 entry padded to 2.
	if page := le.Uint32(table[0:]); page != 0x1000 {
		t.Errorf("block1 page = %#x", page)
	}
	size1 := le.Uint32(table[4:])
	if size1 != 8+2*2 {
		t.Errorf("block1 size = %d, want 12 (padded)", size1)
	}
	entry := le.Uint16(table[8:])
	if entry>>12 != RelBasedHighLow || entry&0xFFF != 8 {
		t.Errorf("block1 entry = %#04x", entry)
	}
	if pad := le.Uint16(table[10:]); pad != 0 {
		t.Errorf("padding entry = %#04x, want ABSOLUTE 0", pad)
	}

	// Block 2: page 0x3000, 3 entries padded to 4.
	b2 := table[size1:]
	if page := le.Uint32(b2[0:]); page != 0x3000 {
		t.Errorf("block2 page = %#x", page)
	}
	if size2 := le.Uint32(b2[4:]); size2 != 8+2*4 {
		t.Errorf("block2 size = %d, want 16", size2)
	}
}

func TestParseRelocTableRejectsBadBlock(t *testing.T) {
	table := BuildRelocTable([]uint32{0x1000})
	binary.LittleEndian.PutUint32(table[4:], 4) // size < 8
	if _, err := ParseRelocTable(table); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestParseRelocTableRejectsUnknownType(t *testing.T) {
	table := BuildRelocTable([]uint32{0x1000})
	// Overwrite the entry's type nibble with 9 (IMAGE_REL_BASED_IA64...).
	binary.LittleEndian.PutUint16(table[8:], 9<<12)
	if _, err := ParseRelocTable(table); !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestParseRelocTableZeroTerminator(t *testing.T) {
	table := BuildRelocTable([]uint32{0x1004})
	table = append(table, make([]byte, 8)...) // zero page + zero size
	back, err := ParseRelocTable(table)
	if err != nil {
		t.Fatalf("zero terminator rejected: %v", err)
	}
	if len(back) != 1 || back[0] != 0x1004 {
		t.Errorf("got %v", back)
	}
}

func TestApplyRelocations(t *testing.T) {
	mem := make([]byte, 0x40)
	le := binary.LittleEndian
	le.PutUint32(mem[0x10:], 0x00011234)
	le.PutUint32(mem[0x20:], 0x00015678)
	if err := ApplyRelocations(mem, []uint32{0x10, 0x20}, 0x00100000); err != nil {
		t.Fatal(err)
	}
	if got := le.Uint32(mem[0x10:]); got != 0x00111234 {
		t.Errorf("site 0x10 = %#x", got)
	}
	if got := le.Uint32(mem[0x20:]); got != 0x00115678 {
		t.Errorf("site 0x20 = %#x", got)
	}
}

func TestApplyRelocationsWraps(t *testing.T) {
	// Negative delta via two's complement: moving an image down.
	mem := make([]byte, 8)
	binary.LittleEndian.PutUint32(mem, 0x00020000)
	delta := uint32(0xFFFF0000) // -0x10000
	if err := ApplyRelocations(mem, []uint32{0}, delta); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(mem); got != 0x00010000 {
		t.Errorf("got %#x, want 0x10000", got)
	}
}

func TestApplyRelocationsOutOfRange(t *testing.T) {
	mem := make([]byte, 8)
	if err := ApplyRelocations(mem, []uint32{6}, 1); err == nil {
		t.Error("site crossing the end accepted")
	}
}

func TestApplyInverseRecoversRVAs(t *testing.T) {
	// Property: relocating by delta then subtracting the new base yields
	// the original RVAs — the invariant ModChecker's Algorithm 2 exploits.
	const preferred, actual = 0x10000, 0xF8CC2000
	mem := make([]byte, 0x100)
	le := binary.LittleEndian
	sites := []uint32{0x00, 0x24, 0x80}
	rvas := []uint32{0x2000, 0x2444, 0x3000}
	for i, s := range sites {
		le.PutUint32(mem[s:], preferred+rvas[i])
	}
	if err := ApplyRelocations(mem, sites, actual-preferred); err != nil {
		t.Fatal(err)
	}
	for i, s := range sites {
		if got := le.Uint32(mem[s:]) - actual; got != rvas[i] {
			t.Errorf("site %#x: recovered RVA %#x, want %#x", s, got, rvas[i])
		}
	}
}

func TestRelocSitesFromImage(t *testing.T) {
	img := buildTestImage(t)
	sites, err := img.RelocSites()
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0] != 0x1004 {
		t.Errorf("RelocSites = %v, want [0x1004]", sites)
	}
}

func TestRelocSitesAbsentDirectory(t *testing.T) {
	b := NewBuilder(0x10000)
	b.AddSection(".text", make([]byte, 0x100), ScnCntCode|ScnMemExecute|ScnMemRead)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sites, err := img.RelocSites()
	if err != nil || sites != nil {
		t.Errorf("RelocSites = %v, %v; want nil, nil", sites, err)
	}
}

func TestRelocSitesCorruptDirectory(t *testing.T) {
	img := buildTestImage(t)
	img.Optional.DataDirectory[DirBaseReloc].VirtualAddress = 0x9F000
	if _, err := img.RelocSites(); err == nil {
		t.Error("corrupt reloc directory accepted")
	}
	img.Optional.DataDirectory[DirBaseReloc] = DataDirectory{}
	img2 := buildTestImage(t)
	img2.Optional.DataDirectory[DirBaseReloc].Size = 1 << 30
	if _, err := img2.RelocSites(); err == nil {
		t.Error("oversized reloc directory accepted")
	}
}

// TestRelocRoundTripQuick property-tests build/parse over random site sets.
func TestRelocRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		set := map[uint32]bool{}
		for i := 0; i < int(n); i++ {
			set[uint32(rng.Intn(1<<20))&^3] = true
		}
		var sites []uint32
		for s := range set {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		back, err := ParseRelocTable(BuildRelocTable(sites))
		if err != nil {
			return false
		}
		if len(sites) == 0 {
			return len(back) == 0
		}
		return reflect.DeepEqual(back, sites)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestApplyRelocationsQuick property-tests that apply(delta) then
// apply(-delta) is the identity.
func TestApplyRelocationsQuick(t *testing.T) {
	f := func(seed int64, delta uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := make([]byte, 4096)
		rng.Read(mem)
		orig := append([]byte(nil), mem...)
		var sites []uint32
		for i := 0; i < 32; i++ {
			sites = append(sites, uint32(rng.Intn(len(mem)-4)))
		}
		// Overlapping sites would not round-trip; dedupe and space them.
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		var spaced []uint32
		last := -8
		for _, s := range sites {
			if int(s) >= last+4 {
				spaced = append(spaced, s)
				last = int(s)
			}
		}
		if err := ApplyRelocations(mem, spaced, delta); err != nil {
			return false
		}
		if err := ApplyRelocations(mem, spaced, -delta); err != nil {
			return false
		}
		return string(mem) == string(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
