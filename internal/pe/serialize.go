package pe

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// HeadersSize returns the exact number of bytes occupied by all headers:
// DOS header + DOS stub + NT headers + section table (before any
// FileAlignment padding).
func (img *Image) HeadersSize() uint32 {
	return uint32(DOSHeaderSize+len(img.DOSStub)) +
		4 + FileHeaderSize + OptionalHeader32Size +
		uint32(len(img.Sections))*SectionHeaderSize
}

// Bytes serializes the image to its on-disk file representation: headers
// padded to SizeOfHeaders, followed by each section's raw data at its
// PointerToRawData offset.
func (img *Image) Bytes() ([]byte, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	total := img.Optional.SizeOfHeaders
	for i := range img.Sections {
		h := &img.Sections[i].Header
		end := h.PointerToRawData + h.SizeOfRawData
		if end > total {
			total = end
		}
	}
	out := make([]byte, total)

	var buf bytes.Buffer
	le := binary.LittleEndian
	if err := binary.Write(&buf, le, &img.DOS); err != nil {
		return nil, fmt.Errorf("pe: serialize DOS header: %w", err)
	}
	buf.Write(img.DOSStub)
	if uint32(buf.Len()) != img.DOS.ELfanew {
		return nil, formatErr("ELfanew %#x does not match DOS header+stub size %#x",
			img.DOS.ELfanew, buf.Len())
	}
	if err := binary.Write(&buf, le, uint32(NTSignature)); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, le, &img.File); err != nil {
		return nil, fmt.Errorf("pe: serialize file header: %w", err)
	}
	if err := binary.Write(&buf, le, &img.Optional); err != nil {
		return nil, fmt.Errorf("pe: serialize optional header: %w", err)
	}
	for i := range img.Sections {
		if err := binary.Write(&buf, le, &img.Sections[i].Header); err != nil {
			return nil, fmt.Errorf("pe: serialize section header %d: %w", i, err)
		}
	}
	if uint32(buf.Len()) > img.Optional.SizeOfHeaders {
		return nil, formatErr("headers (%d bytes) exceed SizeOfHeaders %d",
			buf.Len(), img.Optional.SizeOfHeaders)
	}
	copy(out, buf.Bytes())

	for i := range img.Sections {
		h := &img.Sections[i].Header
		copy(out[h.PointerToRawData:h.PointerToRawData+h.SizeOfRawData], img.Sections[i].Data)
	}
	return out, nil
}

// Parse decodes an on-disk PE32 image. It validates every structural
// invariant it relies on and returns errors wrapping ErrFormat on malformed
// input; it never panics on truncated or corrupt data.
func Parse(raw []byte) (*Image, error) {
	if len(raw) < DOSHeaderSize {
		return nil, formatErr("image too small for DOS header (%d bytes)", len(raw))
	}
	le := binary.LittleEndian
	img := new(Image)
	if err := binary.Read(bytes.NewReader(raw[:DOSHeaderSize]), le, &img.DOS); err != nil {
		return nil, fmt.Errorf("pe: parse DOS header: %w", err)
	}
	if img.DOS.EMagic != DOSMagic {
		return nil, formatErr("bad DOS magic %#04x", img.DOS.EMagic)
	}
	lfanew := img.DOS.ELfanew
	if lfanew < DOSHeaderSize || uint64(lfanew)+4+FileHeaderSize+OptionalHeader32Size > uint64(len(raw)) {
		return nil, formatErr("ELfanew %#x out of range", lfanew)
	}
	img.DOSStub = append([]byte(nil), raw[DOSHeaderSize:lfanew]...)

	if sig := le.Uint32(raw[lfanew:]); sig != NTSignature {
		return nil, formatErr("bad NT signature %#08x", sig)
	}
	off := lfanew + 4
	if err := binary.Read(bytes.NewReader(raw[off:off+FileHeaderSize]), le, &img.File); err != nil {
		return nil, fmt.Errorf("pe: parse file header: %w", err)
	}
	off += FileHeaderSize
	if img.File.SizeOfOptionalHeader != OptionalHeader32Size {
		return nil, formatErr("SizeOfOptionalHeader %d, want %d",
			img.File.SizeOfOptionalHeader, OptionalHeader32Size)
	}
	if err := binary.Read(bytes.NewReader(raw[off:off+OptionalHeader32Size]), le, &img.Optional); err != nil {
		return nil, fmt.Errorf("pe: parse optional header: %w", err)
	}
	if img.Optional.Magic != OptionalMagic32 {
		return nil, formatErr("bad optional-header magic %#04x", img.Optional.Magic)
	}
	off += OptionalHeader32Size

	n := int(img.File.NumberOfSections)
	if uint64(off)+uint64(n)*SectionHeaderSize > uint64(len(raw)) {
		return nil, formatErr("section table for %d sections exceeds image size", n)
	}
	img.Sections = make([]Section, n)
	for i := 0; i < n; i++ {
		if err := binary.Read(bytes.NewReader(raw[off:off+SectionHeaderSize]), le, &img.Sections[i].Header); err != nil {
			return nil, fmt.Errorf("pe: parse section header %d: %w", i, err)
		}
		off += SectionHeaderSize
	}
	for i := 0; i < n; i++ {
		h := &img.Sections[i].Header
		end := uint64(h.PointerToRawData) + uint64(h.SizeOfRawData)
		if end > uint64(len(raw)) {
			return nil, formatErr("section %q raw data [%#x,%#x) exceeds image size %#x",
				h.NameString(), h.PointerToRawData, end, len(raw))
		}
		img.Sections[i].Data = append([]byte(nil), raw[h.PointerToRawData:end]...)
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// Clone returns a deep copy of the image; mutating the clone (as the
// infection toolkit does) never aliases the original's section data.
func (img *Image) Clone() *Image {
	out := *img
	out.DOSStub = append([]byte(nil), img.DOSStub...)
	out.Sections = make([]Section, len(img.Sections))
	for i := range img.Sections {
		out.Sections[i].Header = img.Sections[i].Header
		out.Sections[i].Data = append([]byte(nil), img.Sections[i].Data...)
	}
	return &out
}
