// Package report renders ModChecker results for humans (aligned text) and
// machines (JSON), so the CLI can feed both operators and the "more
// comprehensive, deeper analysis tools" the paper expects downstream of a
// flag.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"modchecker/internal/core"
)

// moduleJSON is the stable JSON shape for one module-on-one-VM result.
type moduleJSON struct {
	Module      string   `json:"module"`
	TargetVM    string   `json:"target_vm"`
	Base        string   `json:"base"`
	Verdict     string   `json:"verdict"`
	Successes   int      `json:"successes"`
	Comparisons int      `json:"comparisons"`
	Mismatched  []string `json:"mismatched_components,omitempty"`
	// Reason explains any non-clean verdict in one line; Error and
	// ErrorClass carry the underlying fault for VerdictError reports.
	Reason     string     `json:"reason,omitempty"`
	Error      string     `json:"error,omitempty"`
	ErrorClass string     `json:"error_class,omitempty"`
	Pairs      []pairJSON `json:"pairs,omitempty"`
	Timing     timingJSON `json:"timing"`
}

type pairJSON struct {
	Peer       string   `json:"peer"`
	Match      bool     `json:"match"`
	Mismatched []string `json:"mismatched_components,omitempty"`
	Error      string   `json:"error,omitempty"`
	ErrorClass string   `json:"error_class,omitempty"`
}

type timingJSON struct {
	SearcherMS float64 `json:"searcher_ms"`
	ParserMS   float64 `json:"parser_ms"`
	CheckerMS  float64 `json:"checker_ms"`
	TotalMS    float64 `json:"total_ms"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func moduleToJSON(r *core.ModuleReport, includePairs bool) moduleJSON {
	out := moduleJSON{
		Module:      r.ModuleName,
		TargetVM:    r.TargetVM,
		Base:        fmt.Sprintf("%#x", r.Base),
		Verdict:     r.Verdict.String(),
		Successes:   r.Successes,
		Comparisons: r.Comparisons,
		Mismatched:  r.MismatchedComponents(),
		Reason:      r.Reason(),
		Timing: timingJSON{
			SearcherMS: ms(r.Timing.Searcher),
			ParserMS:   ms(r.Timing.Parser),
			CheckerMS:  ms(r.Timing.Checker),
			TotalMS:    ms(r.Timing.Total()),
			ElapsedMS:  ms(r.Elapsed),
		},
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
		out.ErrorClass = r.ErrClass.String()
	}
	if includePairs {
		for _, p := range r.Pairs {
			pj := pairJSON{Peer: p.PeerVM, Match: p.Match, Mismatched: p.MismatchedComponents}
			if p.Err != nil {
				pj.Error = p.Err.Error()
				pj.ErrorClass = p.ErrClass.String()
			}
			out.Pairs = append(out.Pairs, pj)
		}
	}
	return out
}

// WriteModuleJSON emits one module report as indented JSON.
//
//moddet:sink report JSON must be byte-identical across runs
func WriteModuleJSON(w io.Writer, r *core.ModuleReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(moduleToJSON(r, true))
}

// poolJSON is the stable JSON shape for a pool sweep.
type poolJSON struct {
	Module       string       `json:"module"`
	Flagged      []string     `json:"flagged,omitempty"`
	Inconclusive []string     `json:"inconclusive,omitempty"`
	Errored      []string     `json:"errored,omitempty"`
	Healthy      int          `json:"healthy"`
	VMs          []moduleJSON `json:"vms"`
	Timing       timingJSON   `json:"timing"`
}

// WritePoolJSON emits a pool report as indented JSON.
//
//moddet:sink report JSON must be byte-identical across runs
func WritePoolJSON(w io.Writer, r *core.PoolReport) error {
	out := poolJSON{
		Module:       r.ModuleName,
		Flagged:      r.Flagged,
		Inconclusive: r.Inconclusive,
		Errored:      r.Errored,
		Healthy:      r.Healthy,
		Timing: timingJSON{
			SearcherMS: ms(r.Timing.Searcher),
			ParserMS:   ms(r.Timing.Parser),
			CheckerMS:  ms(r.Timing.Checker),
			TotalMS:    ms(r.Timing.Total()),
			ElapsedMS:  ms(r.Elapsed),
		},
	}
	for _, vr := range r.VMReports {
		out.VMs = append(out.VMs, moduleToJSON(vr, false))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteModuleText renders a module report as aligned operator-facing text.
//
//moddet:sink report text must be byte-identical across runs
func WriteModuleText(w io.Writer, r *core.ModuleReport, verbose bool) error {
	fmt.Fprintf(w, "%s on %s (base %#x): %s (%d/%d peers agree)\n",
		r.ModuleName, r.TargetVM, r.Base, r.Verdict, r.Successes, r.Comparisons)
	if reason := r.Reason(); reason != "" {
		fmt.Fprintf(w, "reason: %s\n", reason)
	}
	fmt.Fprintf(w, "timing: searcher=%v parser=%v checker=%v elapsed=%v\n",
		r.Timing.Searcher.Round(time.Microsecond), r.Timing.Parser.Round(time.Microsecond),
		r.Timing.Checker.Round(time.Microsecond), r.Elapsed.Round(time.Microsecond))
	if mm := r.MismatchedComponents(); len(mm) > 0 {
		fmt.Fprintf(w, "mismatched components: %s\n", strings.Join(mm, ", "))
	}
	if verbose {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "PEER\tRESULT")
		for _, p := range r.Pairs {
			switch {
			case p.Err != nil:
				fmt.Fprintf(tw, "%s\terror: %v\n", p.PeerVM, p.Err)
			case p.Match:
				fmt.Fprintf(tw, "%s\tmatch\n", p.PeerVM)
			default:
				fmt.Fprintf(tw, "%s\tMISMATCH: %s\n", p.PeerVM, strings.Join(p.MismatchedComponents, ", "))
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// WritePoolText renders a pool report as aligned operator-facing text.
//
//moddet:sink report text must be byte-identical across runs
func WritePoolText(w io.Writer, r *core.PoolReport, verbose bool) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "VM\tBASE\tVERDICT\tAGREEMENT\tDETAIL")
	for _, vr := range r.VMReports {
		detail := strings.Join(vr.MismatchedComponents(), ", ")
		if detail == "" {
			detail = vr.Reason()
		}
		fmt.Fprintf(tw, "%s\t%#x\t%s\t%d/%d\t%s\n",
			vr.TargetVM, vr.Base, vr.Verdict, vr.Successes, vr.Comparisons, detail)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(r.Flagged) > 0 {
		fmt.Fprintf(w, "FLAGGED: %s\n", strings.Join(r.Flagged, ", "))
	}
	if len(r.Inconclusive) > 0 {
		fmt.Fprintf(w, "INCONCLUSIVE: %s\n", strings.Join(r.Inconclusive, ", "))
	}
	if len(r.Errored) > 0 {
		fmt.Fprintf(w, "ERRORED: %s\n", strings.Join(r.Errored, ", "))
	}
	if verbose {
		fmt.Fprintf(w, "healthy: %d/%d VMs\n", r.Healthy, len(r.VMReports))
		fmt.Fprintf(w, "timing: searcher=%v parser=%v checker=%v elapsed=%v\n",
			r.Timing.Searcher.Round(time.Microsecond), r.Timing.Parser.Round(time.Microsecond),
			r.Timing.Checker.Round(time.Microsecond), r.Elapsed.Round(time.Microsecond))
	}
	return nil
}
