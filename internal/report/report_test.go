package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"modchecker/internal/core"
	"modchecker/internal/faults"
	"modchecker/internal/guest"
	"modchecker/internal/rootkit"
	"modchecker/internal/vmi"
)

// testReports builds one clean pool report and one infected module report.
func testReports(t testing.TB) (*core.ModuleReport, *core.PoolReport) {
	t.Helper()
	disk, err := guest.BuildStandardDisk()
	if err != nil {
		t.Fatal(err)
	}
	profile := vmi.XPSP2Profile(guest.PsLoadedModuleListVA)
	var targets []core.Target
	var guests []*guest.Guest
	for i := 0; i < 4; i++ {
		g, err := guest.New(guest.Config{
			Name: "Dom" + string(rune('1'+i)), MemBytes: 64 << 20,
			BootSeed: int64(i + 1), Disk: disk,
		})
		if err != nil {
			t.Fatal(err)
		}
		guests = append(guests, g)
		targets = append(targets, core.Target{Name: g.Name(), Handle: vmi.Open(g.Name(), g.Phys(), g.CR3(), profile)})
	}
	if err := rootkit.InfectDiskAndReload(guests[1], "hal.dll", func(img []byte) ([]byte, error) {
		out, _, err := rootkit.OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	c := core.NewChecker(core.Config{})
	mod, err := c.CheckModule("hal.dll", targets[1], []core.Target{targets[0], targets[2], targets[3]})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := c.CheckPool("hal.dll", targets)
	if err != nil {
		t.Fatal(err)
	}
	return mod, pool
}

func TestWriteModuleJSON(t *testing.T) {
	mod, _ := testReports(t)
	var buf bytes.Buffer
	if err := WriteModuleJSON(&buf, mod); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 0/3 agreement -> ALTERED
	if decoded["verdict"] != "ALTERED" {
		t.Errorf("verdict = %v", decoded["verdict"])
	}
	if decoded["module"] != "hal.dll" || decoded["target_vm"] != "Dom2" {
		t.Errorf("identity fields: %v", decoded)
	}
	mm, _ := decoded["mismatched_components"].([]any)
	if len(mm) != 1 || mm[0] != ".text" {
		t.Errorf("mismatched = %v", mm)
	}
	pairs, _ := decoded["pairs"].([]any)
	if len(pairs) != 3 {
		t.Errorf("pairs = %v", pairs)
	}
	timing, _ := decoded["timing"].(map[string]any)
	if timing["total_ms"].(float64) <= 0 {
		t.Error("timing missing")
	}
}

func TestWritePoolJSON(t *testing.T) {
	_, pool := testReports(t)
	var buf bytes.Buffer
	if err := WritePoolJSON(&buf, pool); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	flagged, _ := decoded["flagged"].([]any)
	if len(flagged) != 1 || flagged[0] != "Dom2" {
		t.Errorf("flagged = %v", flagged)
	}
	vms, _ := decoded["vms"].([]any)
	if len(vms) != 4 {
		t.Errorf("%d vm entries", len(vms))
	}
}

func TestWriteModuleText(t *testing.T) {
	mod, _ := testReports(t)
	var buf bytes.Buffer
	if err := WriteModuleText(&buf, mod, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"hal.dll on Dom2", "ALTERED", "0/3 peers agree", ".text", "MISMATCH"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// faultyPoolReport builds a pool where Dom3 fails permanently at the
// physical-read layer.
func faultyPoolReport(t testing.TB) *core.PoolReport {
	t.Helper()
	disk, err := guest.BuildStandardDisk()
	if err != nil {
		t.Fatal(err)
	}
	profile := vmi.XPSP2Profile(guest.PsLoadedModuleListVA)
	plan := faults.NewPlan(7)
	var targets []core.Target
	for i := 0; i < 4; i++ {
		g, err := guest.New(guest.Config{
			Name: "Dom" + string(rune('1'+i)), MemBytes: 64 << 20,
			BootSeed: int64(i + 1), Disk: disk,
		})
		if err != nil {
			t.Fatal(err)
		}
		targets = append(targets, core.Target{
			Name:   g.Name(),
			Handle: vmi.Open(g.Name(), plan.Reader(g.Name(), g.Phys()), g.CR3(), profile),
		})
	}
	plan.FailForever("Dom3", 0)
	pool, err := core.NewChecker(core.Config{}).CheckPool("hal.dll", targets)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestReportSurfacesFaults: the JSON and text renderings carry the fault
// class and a human-readable reason for errored and inconclusive VMs.
func TestReportSurfacesFaults(t *testing.T) {
	pool := faultyPoolReport(t)

	var buf bytes.Buffer
	if err := WritePoolJSON(&buf, pool); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Errored []string `json:"errored"`
		Healthy int      `json:"healthy"`
		VMs     []struct {
			TargetVM   string `json:"target_vm"`
			Verdict    string `json:"verdict"`
			Reason     string `json:"reason"`
			Error      string `json:"error"`
			ErrorClass string `json:"error_class"`
		} `json:"vms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Errored) != 1 || decoded.Errored[0] != "Dom3" {
		t.Errorf("errored = %v", decoded.Errored)
	}
	if decoded.Healthy != 3 {
		t.Errorf("healthy = %d", decoded.Healthy)
	}
	for _, vm := range decoded.VMs {
		if vm.TargetVM != "Dom3" {
			continue
		}
		if vm.Verdict != "ERROR" || vm.ErrorClass != "PERMANENT" {
			t.Errorf("Dom3 = %+v", vm)
		}
		if vm.Error == "" || !strings.Contains(vm.Reason, "permanent fault") {
			t.Errorf("Dom3 reason/error not surfaced: %+v", vm)
		}
	}

	buf.Reset()
	if err := WritePoolText(&buf, pool, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ERRORED: Dom3", "permanent fault", "healthy: 3/4 VMs"} {
		if !strings.Contains(out, want) {
			t.Errorf("pool text missing %q:\n%s", want, out)
		}
	}
}

func TestWritePoolText(t *testing.T) {
	_, pool := testReports(t)
	var buf bytes.Buffer
	if err := WritePoolText(&buf, pool, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FLAGGED: Dom2", "Dom1", "Dom3", "CLEAN", "ALTERED", "timing:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}
