package rootkit

import (
	"encoding/binary"
	"fmt"

	"modchecker/internal/codegen"
	"modchecker/internal/pe"
)

// BuildInjectDLL synthesizes the malicious helper DLL of the paper's E4
// experiment: a small kernel-mode DLL exporting the given functions (the
// paper's sample exports callMessageBox). Each export points at a real
// generated function in .text, so the image is structurally complete —
// import machinery in the hooked driver references exactly this artifact.
func BuildInjectDLL(dllName string, functions []string) ([]byte, error) {
	gen := codegen.New(int64(len(dllName)) * 7919)
	const textRVA = pe.DefaultSectionAlignment
	code, err := gen.Generate(codegen.GenerateParams{
		Size:     uint32(4096 + 256*len(functions)),
		CodeVA:   0x10000 + textRVA,
		DataVA:   0x10000 + 2*pe.DefaultSectionAlignment,
		DataSize: 1024,
		MinCave:  8,
		MaxCave:  16,
	})
	if err != nil {
		return nil, fmt.Errorf("rootkit: building %s code: %w", dllName, err)
	}
	if len(code.Functions) < len(functions) {
		return nil, fmt.Errorf("rootkit: %s: %d functions generated, need %d",
			dllName, len(code.Functions), len(functions))
	}
	data, err := gen.GenerateData(1024, 0x10000+2*pe.DefaultSectionAlignment, 8)
	if err != nil {
		return nil, err
	}
	b := pe.NewBuilder(0x10000)
	b.SetDLL()
	b.AddSection(".text", code.Code, pe.ScnCntCode|pe.ScnMemExecute|pe.ScnMemRead)
	b.AddSection(".data", data.Code, pe.ScnCntInitializedData|pe.ScnMemRead|pe.ScnMemWrite)
	var sites []uint32
	for _, off := range code.RelocOffsets {
		sites = append(sites, textRVA+off)
	}
	for _, off := range data.RelocOffsets {
		sites = append(sites, 2*pe.DefaultSectionAlignment+off)
	}
	b.SetRelocSites(sites)
	exp := pe.Export{DLLName: dllName}
	for i, fn := range functions {
		exp.Functions = append(exp.Functions, pe.ExportedFunction{
			Name: fn,
			RVA:  textRVA + code.Functions[i],
		})
	}
	b.SetExports(exp)
	img, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("rootkit: building %s: %w", dllName, err)
	}
	return img.Bytes()
}

// DLLHookReport describes a DLL-hooking infection.
type DLLHookReport struct {
	DLL        string
	Function   string
	ThunkRVA   uint32 // IAT slot the patched code calls through
	CallSite   uint32 // RVA of the injected CALL [thunk]
	OldImports []string
}

// rebuildFileAlignment is the coarser alignment PE rebuilding tools emit;
// re-aligning raw data moves every section's file pointers, which is why
// the paper's experiment V-B.4 sees *all* section-header hashes change.
const rebuildFileAlignment = 0x1000

// DLLHook performs experiment V-B.4: it attaches an extra import (the
// paper's inject.dll exporting callMessageBox) to a driver image and
// patches its code to call through the new IAT slot, mimicking the CFF
// Explorer workflow. The image is rebuilt the way such tools rebuild it —
// larger import directory, updated optional-header sizes, bumped link
// timestamp, coarser file alignment — so the loaded module mismatches in
// IMAGE_NT_HEADER, IMAGE_OPTIONAL_HEADER, every IMAGE_SECTION_HEADER and
// .text, exactly the paper's observed outcome.
func DLLHook(image []byte, dll, function string) ([]byte, *DLLHookReport, error) {
	img, err := pe.Parse(image)
	if err != nil {
		return nil, nil, fmt.Errorf("rootkit: dll hook: %w", err)
	}
	oldImports, err := img.ParseImports()
	if err != nil {
		return nil, nil, fmt.Errorf("rootkit: dll hook: reading imports: %w", err)
	}
	sites, err := img.RelocSites()
	if err != nil {
		return nil, nil, fmt.Errorf("rootkit: dll hook: reading relocs: %w", err)
	}
	newImports := append(append([]pe.Import(nil), oldImports...), pe.Import{
		DLL:       dll,
		Functions: []string{function},
	})

	// Pass 1: rebuild with the extra import and unpatched code, to learn
	// where the new function's IAT slot lands.
	probe, err := rebuild(img, newImports, sites, nil)
	if err != nil {
		return nil, nil, err
	}
	thunkRVA, ok := probe.ImportThunkRVA(dll, function)
	if !ok {
		return nil, nil, fmt.Errorf("rootkit: dll hook: thunk for %s!%s missing after rebuild", dll, function)
	}

	// Locate a 6-byte cave in .text for the CALL [thunk].
	text := img.Section(".text")
	if text == nil {
		return nil, nil, fmt.Errorf("%w: no .text section", ErrNoTarget)
	}
	mapped := text.Data
	if vs := text.Header.VirtualSize; vs != 0 && int(vs) < len(mapped) {
		mapped = mapped[:vs] // caves in file-padding tails never reach memory
	}
	caveOff, err := findCave(mapped, 6, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	call := make([]byte, 6)
	call[0], call[1] = 0xFF, 0x15 // CALL dword ptr [abs32]
	binary.LittleEndian.PutUint32(call[2:], img.Optional.ImageBase+thunkRVA)
	callSiteRVA := text.Header.VirtualAddress + caveOff

	// Pass 2: rebuild with the patched code and a relocation entry for the
	// call's absolute operand.
	patched := img.Clone()
	copy(patched.Section(".text").Data[caveOff:], call)
	finalSites := append(append([]uint32(nil), sites...), callSiteRVA+2)
	out, err := rebuild(patched, newImports, finalSites, nil)
	if err != nil {
		return nil, nil, err
	}
	raw, err := out.Bytes()
	if err != nil {
		return nil, nil, err
	}
	rep := &DLLHookReport{
		DLL:      dll,
		Function: function,
		ThunkRVA: thunkRVA,
		CallSite: callSiteRVA,
	}
	for _, imp := range oldImports {
		rep.OldImports = append(rep.OldImports, imp.DLL)
	}
	return raw, rep, nil
}

// rebuild re-emits an image with new imports and relocation sites through
// pe.Builder, preserving the original stub, entry point and section
// contents but re-aligning raw data the way PE editing tools do. extraSecs
// allows appending sections (unused by DLLHook but exercised in tests).
func rebuild(img *pe.Image, imports []pe.Import, relocSites []uint32, extraSecs []pe.Section) (*pe.Image, error) {
	b := pe.NewBuilder(img.Optional.ImageBase)
	b.SetDOSStubRaw(img.DOSStub)
	b.SetEntryPoint(img.Optional.AddressOfEntryPoint)
	b.SetFileAlignment(rebuildFileAlignment)
	// Tools stamp the rebuild time; any change to the link timestamp lands
	// in IMAGE_NT_HEADER (via IMAGE_FILE_HEADER).
	b.SetTimestamp(img.File.TimeDateStamp + 1)
	if img.File.Characteristics&pe.FileDLL != 0 {
		b.SetDLL()
	}
	for i := range img.Sections {
		s := &img.Sections[i]
		name := s.Header.NameString()
		if name == "INIT" || name == ".reloc" {
			continue // regenerated by the builder
		}
		b.AddSectionWithVirtualSize(name, s.Data, s.Header.VirtualSize, s.Header.Characteristics)
	}
	for i := range extraSecs {
		b.AddSectionWithVirtualSize(extraSecs[i].Header.NameString(), extraSecs[i].Data,
			extraSecs[i].Header.VirtualSize, extraSecs[i].Header.Characteristics)
	}
	b.SetImports(imports)
	b.SetRelocSites(relocSites)
	return b.Build()
}
