package rootkit

import (
	"bytes"
	"testing"

	"modchecker/internal/guest"
	"modchecker/internal/pe"
)

func TestDLLHookAddsImport(t *testing.T) {
	orig := victimImage(t)
	infected, rep, err := DLLHook(orig, "inject.dll", "callMessageBox")
	if err != nil {
		t.Fatal(err)
	}
	img, err := pe.Parse(infected)
	if err != nil {
		t.Fatalf("infected image invalid: %v", err)
	}
	imports, err := img.ParseImports()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, imp := range imports {
		if imp.DLL == "inject.dll" {
			found = true
			if len(imp.Functions) != 1 || imp.Functions[0] != "callMessageBox" {
				t.Errorf("inject.dll functions = %v", imp.Functions)
			}
		}
	}
	if !found {
		t.Fatal("inject.dll not imported")
	}
	// Original imports preserved.
	oimg, _ := pe.Parse(orig)
	oimports, _ := oimg.ParseImports()
	if len(imports) != len(oimports)+1 {
		t.Errorf("%d imports, want %d", len(imports), len(oimports)+1)
	}
	if rep.ThunkRVA == 0 || rep.CallSite == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestDLLHookPatchesCode(t *testing.T) {
	orig := victimImage(t)
	infected, rep, err := DLLHook(orig, "inject.dll", "callMessageBox")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := pe.Parse(infected)
	text := img.Section(".text")
	off := rep.CallSite - text.Header.VirtualAddress
	if text.Data[off] != 0xFF || text.Data[off+1] != 0x15 {
		t.Fatalf("call site holds % x", text.Data[off:off+6])
	}
	operand := uint32(text.Data[off+2]) | uint32(text.Data[off+3])<<8 |
		uint32(text.Data[off+4])<<16 | uint32(text.Data[off+5])<<24
	if operand != img.Optional.ImageBase+rep.ThunkRVA {
		t.Errorf("call operand %#x, want base+thunk %#x", operand, img.Optional.ImageBase+rep.ThunkRVA)
	}
	// The operand must be covered by a relocation so the loader fixes it.
	sites, err := img.RelocSites()
	if err != nil {
		t.Fatal(err)
	}
	covered := false
	for _, s := range sites {
		if s == rep.CallSite+2 {
			covered = true
		}
	}
	if !covered {
		t.Error("injected call operand has no relocation entry")
	}
}

// TestDLLHookChangesPaperComponents verifies the paper's E4 signature at
// the file level: NT header, optional header and *every* section header
// change, while the DOS header+stub stays identical.
func TestDLLHookChangesPaperComponents(t *testing.T) {
	orig := victimImage(t)
	infected, _, err := DLLHook(orig, "inject.dll", "callMessageBox")
	if err != nil {
		t.Fatal(err)
	}
	oimg, _ := pe.Parse(orig)
	nimg, _ := pe.Parse(infected)

	if !bytes.Equal(oimg.DOSStub, nimg.DOSStub) {
		t.Error("DOS stub changed")
	}
	if oimg.File == nimg.File {
		t.Error("file header (IMAGE_NT_HEADER) unchanged")
	}
	if oimg.Optional == nimg.Optional {
		t.Error("optional header unchanged")
	}
	if len(nimg.Sections) != len(oimg.Sections) {
		t.Fatalf("section count changed: %d -> %d", len(oimg.Sections), len(nimg.Sections))
	}
	for i := range oimg.Sections {
		if oimg.Sections[i].Header == nimg.Sections[i].Header {
			t.Errorf("section header %q unchanged (paper requires all to change)",
				oimg.Sections[i].Header.NameString())
		}
		if oimg.Sections[i].Header.VirtualAddress != nimg.Sections[i].Header.VirtualAddress &&
			oimg.Sections[i].Header.NameString() != ".reloc" {
			t.Errorf("section %q moved virtually", oimg.Sections[i].Header.NameString())
		}
	}
}

// TestDLLHookLoadsAndRuns verifies the infected driver still loads into a
// guest and that its in-memory call operand resolves to the new thunk.
func TestDLLHookLoadsAndRuns(t *testing.T) {
	orig := victimImage(t)
	infected, rep, err := DLLHook(orig, "inject.dll", "callMessageBox")
	if err != nil {
		t.Fatal(err)
	}
	g, err := guest.New(guest.Config{Name: "vm", MemBytes: 16 << 20, BootSeed: 3,
		Disk: map[string][]byte{"victim.sys": infected}})
	if err != nil {
		t.Fatalf("infected driver failed to load: %v", err)
	}
	mod := g.Module("victim.sys")
	var b [6]byte
	if err := g.AddressSpace().Read(mod.Base+rep.CallSite, b[:]); err != nil {
		t.Fatal(err)
	}
	operand := uint32(b[2]) | uint32(b[3])<<8 | uint32(b[4])<<16 | uint32(b[5])<<24
	if operand != mod.Base+rep.ThunkRVA {
		t.Errorf("loaded call operand %#x, want relocated thunk %#x", operand, mod.Base+rep.ThunkRVA)
	}
}

func TestDLLHookPreservesEntryAndStub(t *testing.T) {
	orig := victimImage(t)
	infected, _, err := DLLHook(orig, "inject.dll", "callMessageBox")
	if err != nil {
		t.Fatal(err)
	}
	oimg, _ := pe.Parse(orig)
	nimg, _ := pe.Parse(infected)
	if oimg.Optional.AddressOfEntryPoint != nimg.Optional.AddressOfEntryPoint {
		t.Error("entry point moved")
	}
	if oimg.Optional.ImageBase != nimg.Optional.ImageBase {
		t.Error("image base changed")
	}
}

func TestDLLHookInvalidImage(t *testing.T) {
	if _, _, err := DLLHook([]byte("garbage"), "inject.dll", "fn"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 5 {
		t.Fatalf("%d presets", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
		if p.Module == "" || p.Description == "" || p.Apply == nil {
			t.Errorf("preset %q incomplete", p.Name)
		}
	}
	for _, want := range []string{"tcpirphook", "win32.chatter", "rustock.b", "opcode-patch", "stub-patch"} {
		if !names[want] {
			t.Errorf("missing preset %q", want)
		}
	}
	if _, err := PresetByName("tcpirphook"); err != nil {
		t.Error(err)
	}
	if _, err := PresetByName("bogus"); err == nil {
		t.Error("bogus preset found")
	}
}

// TestPresetsApplyToStandardGuest applies every preset to a standard guest
// and verifies the targeted module's memory actually changed.
func TestPresetsApplyToStandardGuest(t *testing.T) {
	disk, err := guest.BuildStandardDisk()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Presets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			g, err := guest.New(guest.Config{Name: "vm", MemBytes: 64 << 20, BootSeed: 5, Disk: disk})
			if err != nil {
				t.Fatal(err)
			}
			before := moduleBytes(t, g, p.Module)
			if err := p.Apply(g); err != nil {
				t.Fatalf("apply: %v", err)
			}
			after := moduleBytes(t, g, p.Module)
			if bytes.Equal(before, after) {
				t.Error("preset left the module's memory unchanged")
			}
		})
	}
}

func moduleBytes(t testing.TB, g *guest.Guest, name string) []byte {
	t.Helper()
	mod := g.Module(name)
	if mod == nil {
		t.Fatalf("module %s not loaded", name)
	}
	buf := make([]byte, mod.SizeOfImage)
	if err := g.AddressSpace().Read(mod.Base, buf); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestBuildInjectDLL(t *testing.T) {
	raw, err := BuildInjectDLL("inject.dll", []string{"callMessageBox", "spyOnIRPs"})
	if err != nil {
		t.Fatal(err)
	}
	img, err := pe.Parse(raw)
	if err != nil {
		t.Fatalf("inject.dll does not parse: %v", err)
	}
	if img.File.Characteristics&pe.FileDLL == 0 {
		t.Error("inject.dll not marked as DLL")
	}
	exp, err := img.ParseExports()
	if err != nil {
		t.Fatal(err)
	}
	if exp.DLLName != "inject.dll" {
		t.Errorf("export name = %q", exp.DLLName)
	}
	rva, ok := img.ExportRVA("callMessageBox")
	if !ok {
		t.Fatal("callMessageBox not exported")
	}
	// The export must point at a real function: a decodable prologue.
	text := img.Section(".text")
	off := rva - text.Header.VirtualAddress
	if text.Data[off] != 0x55 {
		t.Errorf("export target starts with %#02x, want push ebp", text.Data[off])
	}
	// And the DLL itself must be relocatable.
	sites, err := img.RelocSites()
	if err != nil || len(sites) == 0 {
		t.Errorf("inject.dll has no relocations (%v)", err)
	}
}

func TestBuildInjectDLLDeterministic(t *testing.T) {
	a, _ := BuildInjectDLL("inject.dll", []string{"callMessageBox"})
	b, _ := BuildInjectDLL("inject.dll", []string{"callMessageBox"})
	if !bytes.Equal(a, b) {
		t.Error("inject.dll builds differ")
	}
}
