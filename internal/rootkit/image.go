// Package rootkit implements the infection techniques the paper uses to
// evaluate ModChecker (Section V-B): single opcode replacement, inline
// hooking through opcode caves, trivial DOS-stub modification, and PE
// header modification via DLL hooking — plus presets modeled on the
// rootkits the paper cites (TCPIRPHOOK, Rustock.B, Win32.Chatter).
//
// Each technique exists in the form the paper applied it: on-disk image
// patching (the file is modified and the infected module enters memory on
// the next load, as with OllyDbg/CFF Explorer in the paper) and, where it
// makes sense, live patching of the loaded module through guest memory.
package rootkit

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"modchecker/internal/codegen"
	"modchecker/internal/pe"
)

// ErrNoTarget is returned when an image lacks the pattern a technique
// needs (no marker instruction, no cave of sufficient size, ...).
var ErrNoTarget = errors.New("rootkit: no suitable target in image")

// Patch records one byte-level modification for reporting and tests.
type Patch struct {
	Section string
	Offset  uint32 // offset within the section's data
	Old     []byte
	New     []byte
}

// markerPattern is the instruction pair the code generator plants in marker
// modules: MOV ECX,16 followed by DEC ECX. E1 rewrites the DEC.
var markerPattern = []byte{0xB9, 0x10, 0x00, 0x00, 0x00, 0x49}

// OpcodeReplace performs the paper's experiment V-B.1 on an on-disk image:
// it finds the counter decrement DEC ECX (opcode 49) and rewrites it as the
// equivalent SUB ECX,1 (83 E9 01), overwriting the two bytes that follow —
// the same one-to-three-byte in-place edit the paper applies to hal.dll
// with OllyDbg. Returns the modified image and the patch applied.
func OpcodeReplace(image []byte) ([]byte, *Patch, error) {
	img, err := pe.Parse(image)
	if err != nil {
		return nil, nil, fmt.Errorf("rootkit: opcode replace: %w", err)
	}
	text := img.Section(".text")
	if text == nil {
		return nil, nil, fmt.Errorf("%w: no .text section", ErrNoTarget)
	}
	idx := bytes.Index(text.Data, markerPattern)
	if idx < 0 {
		return nil, nil, fmt.Errorf("%w: no DEC ECX marker", ErrNoTarget)
	}
	off := uint32(idx + len(markerPattern) - 1) // the 0x49 byte
	if int(off)+3 > len(text.Data) {
		return nil, nil, fmt.Errorf("%w: marker too close to section end", ErrNoTarget)
	}
	patched := img.Clone()
	data := patched.Section(".text").Data
	patch := &Patch{
		Section: ".text",
		Offset:  off,
		Old:     append([]byte(nil), data[off:off+3]...),
		New:     []byte{0x83, 0xE9, 0x01}, // SUB ECX, 1
	}
	copy(data[off:], patch.New)
	out, err := patched.Bytes()
	if err != nil {
		return nil, nil, err
	}
	return out, patch, nil
}

// StubPatch performs experiment V-B.3: it replaces `from` with `to` (equal
// lengths, preserving alignment) inside the DOS stub message — the paper
// turns "DOS" into "CHK" in the dummy driver so that only the DOS-header
// component hash changes.
func StubPatch(image []byte, from, to string) ([]byte, *Patch, error) {
	if len(from) != len(to) || from == "" {
		return nil, nil, fmt.Errorf("rootkit: stub patch needs equal-length non-empty strings")
	}
	img, err := pe.Parse(image)
	if err != nil {
		return nil, nil, fmt.Errorf("rootkit: stub patch: %w", err)
	}
	idx := bytes.Index(img.DOSStub, []byte(from))
	if idx < 0 {
		return nil, nil, fmt.Errorf("%w: %q not in DOS stub", ErrNoTarget, from)
	}
	patched := img.Clone()
	patch := &Patch{
		Section: "DOS stub",
		Offset:  uint32(idx),
		Old:     []byte(from),
		New:     []byte(to),
	}
	copy(patched.DOSStub[idx:], to)
	out, err := patched.Bytes()
	if err != nil {
		return nil, nil, err
	}
	return out, patch, nil
}

// HookReport describes an installed inline hook.
type HookReport struct {
	VictimRVA    uint32 // RVA of the hooked function
	CaveRVA      uint32 // RVA of the payload cave
	DisplacedLen int    // victim bytes moved into the trampoline
	PayloadLen   int
}

// hookPayloadMarker is the "malicious work" the payload performs before
// running the sanitized original bytes: MOV EAX, 0xDEADBEEF.
var hookPayloadMarker = []byte{0xB8, 0xEF, 0xBE, 0xAD, 0xDE}

// InlineHookImage performs experiment V-B.2 on an on-disk image: it
// overwrites the first whole instructions (>= 5 bytes) of a function in
// .text with a JMP into an opcode cave, where the payload runs, re-executes
// the displaced ("sanitized") original instructions, and jumps back —
// exactly the Figure 5 transformation. Only .text changes; headers and
// other sections stay byte-identical.
//
// The victim is the entry-point function when its leading instructions are
// free of absolute-address operands (so the displaced copy needs no
// relocation fixups and the infection stays confined to .text, as in the
// paper); otherwise the first suitable function is used.
func InlineHookImage(image []byte) ([]byte, *HookReport, error) {
	img, err := pe.Parse(image)
	if err != nil {
		return nil, nil, fmt.Errorf("rootkit: inline hook: %w", err)
	}
	text := img.Section(".text")
	if text == nil {
		return nil, nil, fmt.Errorf("%w: no .text section", ErrNoTarget)
	}
	textRVA := text.Header.VirtualAddress
	entryOff := img.Optional.AddressOfEntryPoint - textRVA

	patched := img.Clone()
	data := patched.Section(".text").Data
	if vs := text.Header.VirtualSize; vs != 0 && int(vs) < len(data) {
		data = data[:vs] // stay within the mapped extent
	}
	rep, err := installHook(data, entryOff)
	if err != nil {
		return nil, nil, err
	}
	rep.VictimRVA += textRVA
	rep.CaveRVA += textRVA
	out, err := patched.Bytes()
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}

// installHook hooks the function at victimOff within code (a .text data
// buffer), mutating code in place. Offsets in the returned report are
// relative to code.
func installHook(code []byte, victimOff uint32) (*HookReport, error) {
	victim, err := hookVictim(code, victimOff)
	if err != nil {
		return nil, err
	}
	displaced, span, err := codegen.InstructionsSpanning(code, victim, 5)
	if err != nil {
		return nil, fmt.Errorf("rootkit: decoding victim prologue: %w", err)
	}
	for _, in := range displaced {
		if in.AbsOperandOffset >= 0 {
			return nil, fmt.Errorf("%w: victim prologue carries relocations", ErrNoTarget)
		}
	}

	payloadLen := len(hookPayloadMarker) + span + 5 // marker + sanitized bytes + jmp back
	caveOff, err := findCave(code, payloadLen, victim, uint32(span))
	if err != nil {
		return nil, err
	}

	// Assemble the payload in the cave.
	p := caveOff
	copy(code[p:], hookPayloadMarker)
	p += uint32(len(hookPayloadMarker))
	copy(code[p:], code[victim:victim+uint32(span)]) // sanitation: original bytes
	p += uint32(span)
	writeJmpRel32(code, p, victim+uint32(span)) // resume the victim
	// Overwrite the victim prologue with the hook.
	writeJmpRel32(code, victim, caveOff)
	for i := victim + 5; i < victim+uint32(span); i++ {
		code[i] = 0x90 // NOP out the tail of the displaced instructions
	}
	return &HookReport{
		VictimRVA:    victim,
		CaveRVA:      caveOff,
		DisplacedLen: span,
		PayloadLen:   payloadLen,
	}, nil
}

// hookVictim picks the function to hook: entryOff when its prologue is
// relocation-free, otherwise the next function (recognized by the
// push ebp; mov ebp,esp prologue) that qualifies.
func hookVictim(code []byte, entryOff uint32) (uint32, error) {
	if ok := prologueHookable(code, entryOff); ok {
		return entryOff, nil
	}
	for off := uint32(0); off+8 < uint32(len(code)); off++ {
		if code[off] == 0x55 && code[off+1] == 0x8B && code[off+2] == 0xEC && off != entryOff {
			if prologueHookable(code, off) {
				return off, nil
			}
		}
	}
	return 0, fmt.Errorf("%w: no hookable function", ErrNoTarget)
}

func prologueHookable(code []byte, off uint32) bool {
	ins, _, err := codegen.InstructionsSpanning(code, off, 5)
	if err != nil {
		return false
	}
	for _, in := range ins {
		if in.AbsOperandOffset >= 0 {
			return false
		}
	}
	return true
}

// findCave locates a run of at least n zero bytes in code, outside the
// region [avoidOff, avoidOff+avoidLen) being hooked. Real inline hooks use
// exactly such 00-byte "opcode caves" (paper Figure 5).
func findCave(code []byte, n int, avoidOff, avoidLen uint32) (uint32, error) {
	run := 0
	for i := 0; i < len(code); i++ {
		if uint32(i) >= avoidOff && uint32(i) < avoidOff+avoidLen {
			run = 0
			continue
		}
		if code[i] == 0 {
			run++
			if run >= n {
				return uint32(i - run + 1), nil
			}
		} else {
			run = 0
		}
	}
	return 0, fmt.Errorf("%w: no %d-byte opcode cave", ErrNoTarget, n)
}

// writeJmpRel32 writes a 5-byte JMP rel32 at off targeting target (both
// offsets within code).
func writeJmpRel32(code []byte, off, target uint32) {
	code[off] = 0xE9
	binary.LittleEndian.PutUint32(code[off+1:], target-(off+5))
}
