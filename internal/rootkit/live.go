package rootkit

import (
	"encoding/binary"
	"fmt"

	"modchecker/internal/guest"
	"modchecker/internal/pe"
)

// InlineHookLive installs an inline hook directly in the *loaded* module's
// memory, the way a resident rootkit (the paper cites TCPIRPHOOK and
// Win32.Chatter) patches a running kernel. It reads the module's in-memory
// PE headers through the guest's own address space — the attacker runs
// inside the guest and has full access — locates .text, and performs the
// same jmp-to-cave transformation as InlineHookImage.
func InlineHookLive(g *guest.Guest, moduleName string) (*HookReport, error) {
	mod := g.Module(moduleName)
	if mod == nil {
		return nil, fmt.Errorf("rootkit: %s not loaded in %s", moduleName, g.Name())
	}
	as := g.AddressSpace()

	// Read the headers page to find .text and the entry point.
	hdr := make([]byte, 4096)
	if err := as.Read(mod.Base, hdr); err != nil {
		return nil, fmt.Errorf("rootkit: reading %s headers: %w", moduleName, err)
	}
	le := binary.LittleEndian
	if le.Uint16(hdr[0:]) != pe.DOSMagic {
		return nil, fmt.Errorf("rootkit: %s at %#x has no DOS magic", moduleName, mod.Base)
	}
	lfanew := le.Uint32(hdr[0x3C:])
	if lfanew+4+pe.FileHeaderSize+pe.OptionalHeader32Size >= 4096 {
		return nil, fmt.Errorf("rootkit: %s headers exceed first page", moduleName)
	}
	numSections := le.Uint16(hdr[lfanew+4+2:])
	optOff := lfanew + 4 + pe.FileHeaderSize
	entryRVA := le.Uint32(hdr[optOff+16:])
	secOff := optOff + pe.OptionalHeader32Size

	var textRVA, textSize uint32
	for i := uint32(0); i < uint32(numSections); i++ {
		sh := hdr[secOff+i*pe.SectionHeaderSize:]
		if string(sh[:5]) == ".text" {
			textSize = le.Uint32(sh[8:])
			textRVA = le.Uint32(sh[12:])
			break
		}
	}
	if textRVA == 0 {
		return nil, fmt.Errorf("%w: no .text section in %s", ErrNoTarget, moduleName)
	}

	code := make([]byte, textSize)
	if err := as.Read(mod.Base+textRVA, code); err != nil {
		return nil, fmt.Errorf("rootkit: reading %s .text: %w", moduleName, err)
	}
	rep, err := installHook(code, entryRVA-textRVA)
	if err != nil {
		return nil, err
	}
	if err := as.Write(mod.Base+textRVA, code); err != nil {
		return nil, fmt.Errorf("rootkit: writing %s .text: %w", moduleName, err)
	}
	rep.VictimRVA += textRVA
	rep.CaveRVA += textRVA
	return rep, nil
}

// PatchLiveBytes overwrites len(data) bytes at the given RVA of a loaded
// module — the primitive behind single-opcode live patches and test
// scenarios that corrupt arbitrary components (headers included).
func PatchLiveBytes(g *guest.Guest, moduleName string, rva uint32, data []byte) error {
	mod := g.Module(moduleName)
	if mod == nil {
		return fmt.Errorf("rootkit: %s not loaded in %s", moduleName, g.Name())
	}
	if uint64(rva)+uint64(len(data)) > uint64(mod.SizeOfImage) {
		return fmt.Errorf("rootkit: patch [%#x,%#x) outside %s image", rva, int(rva)+len(data), moduleName)
	}
	return g.AddressSpace().Write(mod.Base+rva, data)
}

// InfectDiskAndReload applies a disk-image mutation and cycles the module
// through an unload/reload, modeling the paper's workflow of patching the
// file (OllyDbg, CFF Explorer) and rebooting — or loading the modified
// driver with the OSR Driver Loader. After reload the infected code is
// what sits in memory.
func InfectDiskAndReload(g *guest.Guest, moduleName string, mutate func([]byte) ([]byte, error)) error {
	img := g.DiskImage(moduleName)
	if img == nil {
		return fmt.Errorf("rootkit: no file %s on %s's disk", moduleName, g.Name())
	}
	infected, err := mutate(img)
	if err != nil {
		return err
	}
	if err := g.ReplaceDiskImage(moduleName, infected); err != nil {
		return err
	}
	if err := g.UnloadModule(moduleName); err != nil {
		return err
	}
	if _, err := g.LoadModule(moduleName); err != nil {
		return fmt.Errorf("rootkit: reloading %s: %w", moduleName, err)
	}
	return nil
}
