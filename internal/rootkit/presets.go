package rootkit

import (
	"fmt"

	"modchecker/internal/guest"
)

// Preset is a named end-to-end infection scenario modeled on malware the
// paper cites. Apply runs it against a guest.
type Preset struct {
	Name        string
	Description string
	Module      string // module the preset targets
	Apply       func(g *guest.Guest) error
}

// Presets returns the built-in infection scenarios.
//
//   - tcpirphook: inline-hooks tcpip.sys in live memory to intercept
//     network connection queries (paper Section V-B.2, citing [19]).
//   - win32.chatter: infects a .sys file on disk by hooking kernel-level
//     functions, entering memory on reload (paper citing [9]).
//   - rustock.b: creates hooks inside ntfs.sys that reference external
//     functions via an attached DLL (paper Section V-B.4, citing [19]).
//   - opcode-patch: the manual hal.dll DEC ECX -> SUB ECX,1 edit of
//     Section V-B.1.
//   - stub-patch: the dummy.sys "DOS" -> "CHK" stub edit of Section V-B.3.
func Presets() []Preset {
	return []Preset{
		{
			Name:        "tcpirphook",
			Description: "inline hook of tcpip.sys in live memory (TCPIRPHOOK rootkit)",
			Module:      "tcpip.sys",
			Apply: func(g *guest.Guest) error {
				_, err := InlineHookLive(g, "tcpip.sys")
				return err
			},
		},
		{
			Name:        "win32.chatter",
			Description: "on-disk inline hook of ndis.sys loaded on reboot (Win32.Chatter virus)",
			Module:      "ndis.sys",
			Apply: func(g *guest.Guest) error {
				return InfectDiskAndReload(g, "ndis.sys", func(img []byte) ([]byte, error) {
					out, _, err := InlineHookImage(img)
					return out, err
				})
			},
		},
		{
			Name:        "rustock.b",
			Description: "DLL hook attached to ntfs.sys referencing external functions (Rustock.B rootkit)",
			Module:      "ntfs.sys",
			Apply: func(g *guest.Guest) error {
				return InfectDiskAndReload(g, "ntfs.sys", func(img []byte) ([]byte, error) {
					out, _, err := DLLHook(img, "inject.dll", "callMessageBox")
					return out, err
				})
			},
		},
		{
			Name:        "opcode-patch",
			Description: "single opcode replacement in hal.dll (DEC ECX -> SUB ECX,1)",
			Module:      "hal.dll",
			Apply: func(g *guest.Guest) error {
				return InfectDiskAndReload(g, "hal.dll", func(img []byte) ([]byte, error) {
					out, _, err := OpcodeReplace(img)
					return out, err
				})
			},
		},
		{
			Name:        "stub-patch",
			Description: `dummy.sys DOS-stub text edit ("DOS" -> "CHK")`,
			Module:      "dummy.sys",
			Apply: func(g *guest.Guest) error {
				return InfectDiskAndReload(g, "dummy.sys", func(img []byte) ([]byte, error) {
					out, _, err := StubPatch(img, "DOS", "CHK")
					return out, err
				})
			},
		},
	}
}

// PresetByName returns the named preset.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("rootkit: unknown preset %q", name)
}
