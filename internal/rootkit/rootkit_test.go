package rootkit

import (
	"bytes"
	"crypto/md5"
	"errors"
	"testing"

	"modchecker/internal/codegen"
	"modchecker/internal/guest"
	"modchecker/internal/pe"
)

// victimImage builds a module image with the E1 marker and caves.
func victimImage(t testing.TB) []byte {
	t.Helper()
	img, err := guest.BuildImage(guest.ModuleSpec{
		Name: "victim.sys", TextSize: 16 << 10, DataSize: 4 << 10, RdataSize: 1 << 10,
		PreferredBase: 0x10000, Marker: true,
		Imports: []pe.Import{{DLL: "ntoskrnl.exe", Functions: []string{"ZwClose"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// sectionHashes hashes each component of an image's *in-memory* layout so
// tests can assert exactly which parts an infection touched.
func sectionHashes(t testing.TB, raw []byte) map[string][md5.Size]byte {
	t.Helper()
	img, err := pe.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][md5.Size]byte{}
	out["dos+stub"] = md5.Sum(append(encodeDOS(img), img.DOSStub...))
	for i := range img.Sections {
		h := img.Sections[i].Header
		out["hdr:"+h.NameString()] = md5.Sum(headerBytes(h))
		out["data:"+h.NameString()] = md5.Sum(img.Sections[i].Data)
	}
	return out
}

func encodeDOS(img *pe.Image) []byte {
	// Enough for identity comparison: reuse serialized image prefix.
	raw, _ := img.Bytes()
	return raw[:64]
}

func headerBytes(h pe.SectionHeader) []byte {
	b := make([]byte, 0, 40)
	b = append(b, h.Name[:]...)
	for _, v := range []uint32{h.VirtualSize, h.VirtualAddress, h.SizeOfRawData, h.PointerToRawData, h.Characteristics} {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return b
}

func diffKeys(a, b map[string][md5.Size]byte) []string {
	var out []string
	for k, va := range a {
		if vb, ok := b[k]; !ok || vb != va {
			out = append(out, k)
		}
	}
	return out
}

func TestOpcodeReplacePatchBytes(t *testing.T) {
	orig := victimImage(t)
	infected, patch, err := OpcodeReplace(orig)
	if err != nil {
		t.Fatal(err)
	}
	if patch.Section != ".text" {
		t.Errorf("patched %s", patch.Section)
	}
	if patch.Old[0] != 0x49 {
		t.Errorf("old bytes % x do not start with DEC ECX", patch.Old)
	}
	if !bytes.Equal(patch.New, []byte{0x83, 0xE9, 0x01}) {
		t.Errorf("new bytes % x", patch.New)
	}
	// Exactly 3 bytes of .text differ; sizes unchanged.
	if len(infected) != len(orig) {
		t.Fatal("image size changed")
	}
	diffs := 0
	for i := range orig {
		if orig[i] != infected[i] {
			diffs++
		}
	}
	if diffs == 0 || diffs > 3+4 { // 3 patch bytes + possibly checksum
		t.Errorf("%d bytes differ", diffs)
	}
}

func TestOpcodeReplaceOnlyTextChanges(t *testing.T) {
	orig := victimImage(t)
	infected, _, err := OpcodeReplace(orig)
	if err != nil {
		t.Fatal(err)
	}
	changed := diffKeys(sectionHashes(t, orig), sectionHashes(t, infected))
	if len(changed) != 1 || changed[0] != "data:.text" {
		t.Errorf("changed components = %v, want [data:.text]", changed)
	}
}

func TestOpcodeReplaceNewCodeDecodes(t *testing.T) {
	infected, _, err := OpcodeReplace(victimImage(t))
	if err != nil {
		t.Fatal(err)
	}
	img, _ := pe.Parse(infected)
	text := img.Section(".text").Data
	idx := bytes.Index(text, []byte{0xB9, 0x10, 0x00, 0x00, 0x00, 0x83, 0xE9, 0x01})
	if idx < 0 {
		t.Fatal("SUB ECX,1 not found after MOV ECX,16")
	}
	in, err := codegen.Decode(text, uint32(idx+5))
	if err != nil || in.Mnemonic != "sub ecx, imm8" {
		t.Errorf("patched instruction decodes as %q (%v)", in.Mnemonic, err)
	}
}

func TestOpcodeReplaceNoMarker(t *testing.T) {
	img, err := guest.BuildImage(guest.ModuleSpec{
		Name: "plain.sys", TextSize: 8 << 10, DataSize: 1 << 10, RdataSize: 1 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpcodeReplace(img); !errors.Is(err, ErrNoTarget) {
		t.Errorf("err = %v, want ErrNoTarget", err)
	}
}

func TestStubPatch(t *testing.T) {
	orig := victimImage(t)
	infected, patch, err := StubPatch(orig, "DOS", "CHK")
	if err != nil {
		t.Fatal(err)
	}
	if patch.Section != "DOS stub" {
		t.Errorf("section = %s", patch.Section)
	}
	img, _ := pe.Parse(infected)
	if !bytes.Contains(img.DOSStub, []byte("CHK mode")) {
		t.Error("stub does not read 'CHK mode'")
	}
	if bytes.Contains(img.DOSStub, []byte("DOS mode")) {
		t.Error("original text still present")
	}
	changed := diffKeys(sectionHashes(t, orig), sectionHashes(t, infected))
	if len(changed) != 1 || changed[0] != "dos+stub" {
		t.Errorf("changed = %v, want only the DOS header+stub", changed)
	}
}

func TestStubPatchValidation(t *testing.T) {
	orig := victimImage(t)
	if _, _, err := StubPatch(orig, "DOS", "LONGER"); err == nil {
		t.Error("unequal lengths accepted")
	}
	if _, _, err := StubPatch(orig, "ZZZ", "YYY"); !errors.Is(err, ErrNoTarget) {
		t.Errorf("missing needle: %v", err)
	}
}

func TestInlineHookImage(t *testing.T) {
	orig := victimImage(t)
	infected, rep, err := InlineHookImage(orig)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DisplacedLen < 5 {
		t.Errorf("displaced %d bytes", rep.DisplacedLen)
	}
	changed := diffKeys(sectionHashes(t, orig), sectionHashes(t, infected))
	if len(changed) != 1 || changed[0] != "data:.text" {
		t.Errorf("changed = %v, want [data:.text] only", changed)
	}
}

// TestInlineHookControlFlow decodes the infected image and verifies the
// full Figure 5 structure: victim starts with JMP to the cave; the cave
// holds the payload marker, the displaced original instructions, and a JMP
// back to victim+displaced.
func TestInlineHookControlFlow(t *testing.T) {
	orig := victimImage(t)
	infected, rep, err := InlineHookImage(orig)
	if err != nil {
		t.Fatal(err)
	}
	oimg, _ := pe.Parse(orig)
	img, _ := pe.Parse(infected)
	textRVA := img.Section(".text").Header.VirtualAddress
	code := img.Section(".text").Data
	ocode := oimg.Section(".text").Data
	victim := rep.VictimRVA - textRVA
	cave := rep.CaveRVA - textRVA

	// 1. Victim entry is a JMP rel32 to the cave.
	in, err := codegen.Decode(code, victim)
	if err != nil || in.Mnemonic != "jmp rel32" {
		t.Fatalf("victim starts with %q (%v)", in.Mnemonic, err)
	}
	rel := uint32(code[victim+1]) | uint32(code[victim+2])<<8 | uint32(code[victim+3])<<16 | uint32(code[victim+4])<<24
	if victim+5+rel != cave {
		t.Errorf("hook jmp targets %#x, cave at %#x", victim+5+rel, cave)
	}
	// 2. NOP padding for remaining displaced bytes.
	for i := victim + 5; i < victim+uint32(rep.DisplacedLen); i++ {
		if code[i] != 0x90 {
			t.Errorf("byte %#x = %#02x, want NOP", i, code[i])
		}
	}
	// 3. Cave: payload marker first.
	if !bytes.Equal(code[cave:cave+5], hookPayloadMarker) {
		t.Errorf("cave starts % x", code[cave:cave+5])
	}
	// 4. Sanitized original bytes follow.
	sanitized := code[cave+5 : cave+5+uint32(rep.DisplacedLen)]
	if !bytes.Equal(sanitized, ocode[victim:victim+uint32(rep.DisplacedLen)]) {
		t.Error("displaced bytes in cave differ from the original prologue")
	}
	// 5. JMP back to victim+displaced.
	back := cave + 5 + uint32(rep.DisplacedLen)
	in, err = codegen.Decode(code, back)
	if err != nil || in.Mnemonic != "jmp rel32" {
		t.Fatalf("cave tail is %q (%v)", in.Mnemonic, err)
	}
	rel = uint32(code[back+1]) | uint32(code[back+2])<<8 | uint32(code[back+3])<<16 | uint32(code[back+4])<<24
	if back+5+rel != victim+uint32(rep.DisplacedLen) {
		t.Errorf("return jmp targets %#x, want %#x", back+5+rel, victim+uint32(rep.DisplacedLen))
	}
}

func TestInlineHookLive(t *testing.T) {
	disk := map[string][]byte{"victim.sys": victimImage(t)}
	g, err := guest.New(guest.Config{Name: "vm", MemBytes: 16 << 20, BootSeed: 1, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	mod := g.Module("victim.sys")
	before := make([]byte, mod.SizeOfImage)
	g.AddressSpace().Read(mod.Base, before)

	rep, err := InlineHookLive(g, "victim.sys")
	if err != nil {
		t.Fatal(err)
	}
	after := make([]byte, mod.SizeOfImage)
	g.AddressSpace().Read(mod.Base, after)
	if bytes.Equal(before, after) {
		t.Fatal("live hook changed nothing")
	}
	// The victim's first instruction in guest memory is now a JMP.
	var b [1]byte
	g.AddressSpace().Read(mod.Base+rep.VictimRVA, b[:])
	if b[0] != 0xE9 {
		t.Errorf("victim byte = %#02x, want E9 (jmp)", b[0])
	}
	// Headers untouched: only .text bytes changed.
	img, _ := pe.Parse(disk["victim.sys"])
	text := img.Section(".text").Header
	for i := range before {
		if before[i] != after[i] {
			rva := uint32(i)
			if rva < text.VirtualAddress || rva >= text.VirtualAddress+text.VirtualSize {
				t.Fatalf("live hook touched byte outside .text at RVA %#x", rva)
			}
		}
	}
}

func TestInlineHookLiveMissingModule(t *testing.T) {
	g, err := guest.New(guest.Config{Name: "vm", MemBytes: 16 << 20, BootSeed: 1,
		Disk: map[string][]byte{"victim.sys": victimImage(t)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InlineHookLive(g, "ghost.sys"); err == nil {
		t.Error("hooking missing module succeeded")
	}
}

func TestPatchLiveBytes(t *testing.T) {
	g, err := guest.New(guest.Config{Name: "vm", MemBytes: 16 << 20, BootSeed: 1,
		Disk: map[string][]byte{"victim.sys": victimImage(t)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := PatchLiveBytes(g, "victim.sys", 0x1000, []byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	mod := g.Module("victim.sys")
	var b [1]byte
	g.AddressSpace().Read(mod.Base+0x1000, b[:])
	if b[0] != 0xCC {
		t.Error("patch not applied")
	}
	if err := PatchLiveBytes(g, "victim.sys", mod.SizeOfImage-1, []byte{1, 2, 3}); err == nil {
		t.Error("out-of-image patch accepted")
	}
	if err := PatchLiveBytes(g, "ghost.sys", 0, []byte{1}); err == nil {
		t.Error("patching missing module accepted")
	}
}

func TestInfectDiskAndReload(t *testing.T) {
	disk := map[string][]byte{"victim.sys": victimImage(t)}
	g, err := guest.New(guest.Config{Name: "vm", MemBytes: 16 << 20, BootSeed: 1, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	if err := InfectDiskAndReload(g, "victim.sys", func(img []byte) ([]byte, error) {
		out, _, err := OpcodeReplace(img)
		return out, err
	}); err != nil {
		t.Fatal(err)
	}
	// The loaded module now carries the patched opcode sequence.
	mod := g.Module("victim.sys")
	buf := make([]byte, mod.SizeOfImage)
	g.AddressSpace().Read(mod.Base, buf)
	if !bytes.Contains(buf, []byte{0xB9, 0x10, 0x00, 0x00, 0x00, 0x83, 0xE9, 0x01}) {
		t.Error("reloaded module lacks the infected sequence")
	}
}

func TestInfectDiskAndReloadMissing(t *testing.T) {
	g, err := guest.New(guest.Config{Name: "vm", MemBytes: 16 << 20, BootSeed: 1,
		Disk: map[string][]byte{"victim.sys": victimImage(t)}})
	if err != nil {
		t.Fatal(err)
	}
	if err := InfectDiskAndReload(g, "ghost.sys", func(b []byte) ([]byte, error) { return b, nil }); err == nil {
		t.Error("infecting missing file succeeded")
	}
}
