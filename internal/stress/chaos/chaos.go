// Package chaos is the seeded chaos-soak harness: it derives a randomized —
// but fully deterministic — fault plan from one seed, drives a scanner
// through a faulted phase and a quiet phase over a 15-VM pool, and checks
// the reproduction's core robustness invariants: corrupted or torn data
// never produces a false verdict, the health machine converges once faults
// clear, and an identical seed yields byte-identical sweep reports.
//
// The harness is exercised by `make chaos-smoke` (many seeds, -race) and by
// the regular test suite (a few seeds).
package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"modchecker"
)

// Config parameterizes one soak run. The zero value of every field except
// Seed picks the defaults below.
type Config struct {
	// Seed derives the cloud, the fault plan, and the randomized schedule.
	Seed int64
	// VMs is the pool size (default 15, the paper's scale).
	VMs int
	// FaultySweeps is how many sweeps run with the fault plan active
	// (default 4).
	FaultySweeps int
	// QuietSweeps caps the post-quiesce convergence phase (default 20).
	QuietSweeps int
	// SweepBudget, when nonzero, arms the scanner's sweep budget for the
	// faulted phase, exercising checkpoint/resume under fire. It is
	// disarmed for the quiet phase.
	SweepBudget time.Duration
	// VMBudget, when nonzero, arms the per-VM budget for the faulted phase.
	VMBudget time.Duration
	// Parallel runs the checker's parallel pipeline.
	Parallel bool
}

func (c Config) withDefaults() Config {
	if c.VMs == 0 {
		c.VMs = 15
	}
	if c.FaultySweeps == 0 {
		c.FaultySweeps = 4
	}
	if c.QuietSweeps == 0 {
		c.QuietSweeps = 20
	}
	return c
}

// Result is everything a soak run observed.
type Result struct {
	// Reports are all sweep reports in order, faulted and quiet phases.
	Reports []*modchecker.SweepReport
	// Fingerprint is the concatenated JSON of every report — byte-identical
	// across runs of the same seed.
	Fingerprint string
	// Converged is true when a quiet-phase sweep was clean with every VM
	// healthy; ConvergedAt is that sweep's number.
	Converged   bool
	ConvergedAt int
	// AlteredAlerts counts VerdictAltered alerts. No run plants an
	// infection, so any value above zero is a false positive manufactured
	// from fault noise — an invariant violation.
	AlteredAlerts int
	// AbortedSweeps counts sweep attempts that aborted during the faulted
	// phase (too few eligible VMs, discovery outage).
	AbortedSweeps int
	// PartialSweeps counts budget-cut sweeps; Resumes counts sweeps that
	// continued a checkpoint.
	PartialSweeps int
	Resumes       int
}

// vmName mirrors the cloud facade's naming.
func vmName(i int) string { return fmt.Sprintf("Dom%d", i+1) }

// buildPlan derives the randomized fault schedule. Everything is drawn from
// the one seeded source, so the schedule — and therefore the whole run — is
// a pure function of the seed. Read faults, torn windows, control-plane
// failures, hangs, latency, and pause/resume storms are all in the mix;
// domains are never destroyed (a destroyed domain can never reconverge,
// which would void the harness's convergence invariant).
func buildPlan(cfg Config, rng *rand.Rand) *modchecker.FaultPlan {
	plan := modchecker.NewFaultPlan(cfg.Seed)
	ops := []modchecker.FaultOp{
		modchecker.OpSnapshot, modchecker.OpRevert, modchecker.OpClone,
		modchecker.OpDestroy, modchecker.OpPause, modchecker.OpUnpause,
	}
	for i := 0; i < cfg.VMs; i++ {
		vm := vmName(i)
		if rng.Float64() < 0.35 {
			plan.FlakyReads(vm, 0.01+rng.Float64()*0.06)
		}
		if rng.Float64() < 0.30 {
			from := uint64(rng.Intn(2000))
			plan.FailReads(vm, from, from+1+uint64(rng.Intn(40)))
		}
		if rng.Float64() < 0.25 {
			from := uint64(rng.Intn(2000))
			plan.TornWindow(vm, from, from+1+uint64(rng.Intn(200)))
		}
		if rng.Float64() < 0.15 {
			// A mid-run pause/resume pair: the domain drops out and returns.
			at := uint64(500 + rng.Intn(1500))
			plan.PauseAt(vm, at)
			plan.ResumeAt(vm, at+uint64(1+rng.Intn(400)))
		}
		// Control-plane chaos: flaky, failing, hanging, and slow lifecycle
		// operations.
		if rng.Float64() < 0.30 {
			plan.FlakyOps(vm, ops[rng.Intn(len(ops))], 0.1+rng.Float64()*0.3)
		}
		if rng.Float64() < 0.25 {
			from := uint64(rng.Intn(4))
			plan.FailOps(vm, ops[rng.Intn(len(ops))], from, from+1+uint64(rng.Intn(3)))
		}
		if rng.Float64() < 0.15 {
			plan.HangOps(vm, ops[rng.Intn(len(ops))], 0, 1+uint64(rng.Intn(3)))
		}
		if rng.Float64() < 0.25 {
			plan.SlowOps(vm, ops[rng.Intn(len(ops))], time.Duration(rng.Intn(3000))*time.Microsecond)
		}
	}
	// One VM in four runs dies outright until the quiesce.
	if rng.Float64() < 0.25 {
		plan.FailForever(vmName(rng.Intn(cfg.VMs)), uint64(rng.Intn(500)))
	}
	return plan
}

// Run executes one soak: faulted sweeps, quiesce, quiet sweeps until the
// health machine converges (or the cap). The returned error covers only
// harness-level failures (the cloud not building); invariant outcomes are
// reported in the Result for the caller to assert on.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	cloud, err := modchecker.NewCloud(modchecker.CloudConfig{VMs: cfg.VMs, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("chaos: building cloud: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	plan := buildPlan(cfg, rng)
	cloud.InstallFaultPlan(plan)

	opts := []modchecker.CheckerOption{modchecker.WithRetry(modchecker.DefaultRetryPolicy())}
	if cfg.Parallel {
		opts = append(opts, modchecker.WithParallel())
	}
	sc := cloud.NewScanner(opts...)
	sc.SetHealthPolicy(modchecker.HealthPolicy{QuarantineAfter: 2, ReadmitAfter: 1})
	sc.SetBudget(modchecker.BudgetPolicy{SweepBudget: cfg.SweepBudget, VMBudget: cfg.VMBudget})

	res := &Result{}
	var fp bytes.Buffer
	record := func(rep *modchecker.SweepReport) error {
		res.Reports = append(res.Reports, rep)
		if rep.Partial {
			res.PartialSweeps++
		}
		if rep.Resumed {
			res.Resumes++
		}
		for _, a := range rep.Alerts {
			if a.Verdict == modchecker.VerdictAltered {
				res.AlteredAlerts++
			}
		}
		return rep.WriteJSON(&fp)
	}

	for i := 0; i < cfg.FaultySweeps; i++ {
		// Lifecycle churn between sweeps drives the control plane through
		// the fault gate: failed snapshots and reverts accumulate
		// consecutive control failures, which is what trips the scanner's
		// per-domain breaker at the next partition.
		for c := 0; c < 2; c++ {
			d := cloud.Domain(vmName(rng.Intn(cfg.VMs)))
			if d == nil || d.Destroyed() {
				continue
			}
			tag := fmt.Sprintf("chaos-%d-%d", i, c)
			if err := d.TakeSnapshot(tag); err == nil {
				_ = d.Revert(tag)
			}
		}
		rep, err := sc.Sweep()
		if err != nil {
			res.AbortedSweeps++
			continue
		}
		if err := record(rep); err != nil {
			return nil, err
		}
	}

	// Faults clear: schedules are wiped, read/op counters survive, so the
	// quiet phase continues from the same deterministic position.
	plan.Quiesce()
	sc.SetBudget(modchecker.BudgetPolicy{})

	for i := 0; i < cfg.QuietSweeps; i++ {
		rep, err := sc.Sweep()
		if err != nil {
			res.AbortedSweeps++
			continue
		}
		if err := record(rep); err != nil {
			return nil, err
		}
		if converged(rep) {
			res.Converged = true
			res.ConvergedAt = rep.Sweep
			break
		}
	}
	res.Fingerprint = fp.String()
	return res, nil
}

// converged reports whether the sweep proves the pool fully recovered:
// positively clean, every tracked VM healthy, nobody skipped or deferred.
func converged(rep *modchecker.SweepReport) bool {
	if !rep.Clean() || len(rep.Quarantined) > 0 || len(rep.Skipped) > 0 ||
		len(rep.BreakerOpen) > 0 || len(rep.BudgetExceeded) > 0 {
		return false
	}
	for _, st := range rep.Health {
		if st != modchecker.HealthHealthy {
			return false
		}
	}
	return true
}
