package chaos

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// seedCount honors CHAOS_SEEDS so `make chaos-smoke` can soak many more
// seeds than a regular test run.
func seedCount(t *testing.T) int {
	t.Helper()
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CHAOS_SEEDS=%q: want a positive integer", v)
		}
		return n
	}
	return 5
}

// configFor spreads the soak across the robustness feature matrix: every
// third seed arms the sweep budget (checkpoint/resume under fire), every
// fourth the per-VM budget, and odd seeds run the parallel pipeline.
func configFor(i int) Config {
	cfg := Config{Seed: 1000 + int64(i)*17}
	if i%3 == 0 {
		cfg.SweepBudget = 40 * time.Millisecond
	}
	if i%4 == 0 {
		cfg.VMBudget = 8 * time.Millisecond
	}
	cfg.Parallel = i%2 == 1
	return cfg
}

// TestChaosSoak runs the seeded soak matrix and asserts the three
// invariants on every seed: fault noise never fabricates an ALTERED
// verdict, health converges once the plan quiesces, and the same seed
// replays to byte-identical reports.
func TestChaosSoak(t *testing.T) {
	n := seedCount(t)
	for i := 0; i < n; i++ {
		cfg := configFor(i)
		t.Run(strconv.FormatInt(cfg.Seed, 10), func(t *testing.T) {
			first, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if first.AlteredAlerts > 0 {
				t.Errorf("fault noise produced %d ALTERED alert(s): torn/corrupt data misread as infection", first.AlteredAlerts)
			}
			if !first.Converged {
				last := first.Reports[len(first.Reports)-1]
				t.Errorf("pool never converged after quiesce; final sweep %d: quarantined=%v skipped=%v breaker=%v",
					last.Sweep, last.Quarantined, last.Skipped, last.BreakerOpen)
			}
			if len(first.Reports) == 0 {
				t.Fatal("soak produced no sweep reports")
			}
			if cfg.SweepBudget > 0 && first.PartialSweeps > 0 && first.Resumes == 0 {
				t.Errorf("budget cut %d sweep(s) but no sweep resumed the checkpoint", first.PartialSweeps)
			}

			second, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if first.Fingerprint != second.Fingerprint {
				t.Errorf("seed %d is not deterministic: report fingerprints diverge (%d vs %d bytes)",
					cfg.Seed, len(first.Fingerprint), len(second.Fingerprint))
			}
		})
	}
}

// TestChaosSoakNoGoroutineLeak: the soak (including parallel-pipeline
// seeds) leaves no workers behind.
func TestChaosSoakNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, i := range []int{0, 1, 3} { // sequential, parallel, budgeted
		if _, err := Run(configFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	var after int
	for attempt := 0; attempt < 50; attempt++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after > before {
		t.Errorf("goroutines leaked across soak runs: %d before, %d after", before, after)
	}
}
