// Package stress is the reproduction's HeavyLoad: the stress-testing tool
// the paper runs inside guests to create the worst-case scenario of
// Section V-C.1 (Figure 8). It drives a guest's CPU, memory, disk and
// network demand to near saturation; the hypervisor's scheduler model turns
// that demand into contention for Dom0's introspection work.
package stress

import "modchecker/internal/guest"

// Level is a resource demand profile, each component in [0,1].
type Level struct {
	CPU  float64
	Mem  float64
	Disk float64
	Net  float64
}

// HeavyLoad saturates every resource, like the paper's tool of the same
// name ("capable of stressing all the resources (such as CPU, RAM and
// disk) of an MS Windows machine").
var HeavyLoad = Level{CPU: 1.0, Mem: 0.85, Disk: 0.75, Net: 0.5}

// IdleLevel is the quiescent background demand of an idle Windows guest.
var IdleLevel = Level{CPU: 0.01, Mem: 0.05, Disk: 0.01, Net: 0.01}

// Apply sets the guest's demand to the level.
func Apply(g *guest.Guest, l Level) {
	g.SetLoad(l.CPU, l.Mem, l.Disk, l.Net)
}

// Idle returns the guest to the idle profile.
func Idle(g *guest.Guest) { Apply(g, IdleLevel) }

// ApplyAll stresses a set of guests.
func ApplyAll(gs []*guest.Guest, l Level) {
	for _, g := range gs {
		Apply(g, l)
	}
}
