package stress

import (
	"testing"

	"modchecker/internal/guest"
)

func testGuest(t testing.TB, seed int64) *guest.Guest {
	t.Helper()
	img, err := guest.BuildImage(guest.ModuleSpec{
		Name: "alpha.sys", TextSize: 8 << 10, DataSize: 2 << 10, RdataSize: 1 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := guest.New(guest.Config{
		Name: "vm", MemBytes: 16 << 20, BootSeed: seed,
		Disk: map[string][]byte{"alpha.sys": img},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHeavyLoadSaturates(t *testing.T) {
	g := testGuest(t, 1)
	Apply(g, HeavyLoad)
	if g.Load() != 1 {
		t.Errorf("HeavyLoad CPU demand = %.2f, want saturation", g.Load())
	}
	g.Tick(100)
	s := g.Sample()
	if s.CPUIdlePct > 10 {
		t.Errorf("idle %% under HeavyLoad = %.1f", s.CPUIdlePct)
	}
	if s.FreePhysMemPct > 30 {
		t.Errorf("free mem under HeavyLoad = %.1f%%", s.FreePhysMemPct)
	}
	if s.DiskQueueLen < 1 {
		t.Errorf("disk queue under HeavyLoad = %.2f", s.DiskQueueLen)
	}
}

func TestIdleRestores(t *testing.T) {
	g := testGuest(t, 2)
	Apply(g, HeavyLoad)
	Idle(g)
	if g.Load() > 0.05 {
		t.Errorf("Load after Idle = %.2f", g.Load())
	}
	g.Tick(100)
	if s := g.Sample(); s.CPUIdlePct < 90 {
		t.Errorf("CPU idle after Idle = %.1f%%", s.CPUIdlePct)
	}
}

func TestApplyAll(t *testing.T) {
	gs := []*guest.Guest{testGuest(t, 3), testGuest(t, 4), testGuest(t, 5)}
	ApplyAll(gs, HeavyLoad)
	for i, g := range gs {
		if g.Load() != 1 {
			t.Errorf("guest %d load = %.2f", i, g.Load())
		}
	}
	ApplyAll(gs, IdleLevel)
	for i, g := range gs {
		if g.Load() > 0.05 {
			t.Errorf("guest %d load after idle = %.2f", i, g.Load())
		}
	}
}

func TestLevelsAreDistinct(t *testing.T) {
	if HeavyLoad.CPU <= IdleLevel.CPU || HeavyLoad.Mem <= IdleLevel.Mem {
		t.Error("HeavyLoad does not exceed IdleLevel")
	}
}
