// Package trace is the reproduction's deterministic tracing layer: a
// span/event model stamped with the *simulated* hypervisor timeline plus a
// per-run sequence number, ring-buffered, and exportable as Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing).
//
// Determinism is the design constraint that shapes everything here. The
// pipeline's results are byte-identical across runs from one seed, and its
// traces must be too, so:
//
//   - Timestamps are never host time. Events are stamped with an explicit
//     simulated timestamp supplied by the caller, and the tracer keeps a
//     *timeline cursor* that instrumentation advances by each stage's
//     modeled elapsed time (the same deterministic list-scheduling model
//     that produces PoolReport.Elapsed) — never by goroutine timing.
//   - Events are only emitted from deterministic single-threaded points
//     (stage coordinators). Code running inside bounded workers — fault
//     injections, lifecycle events fired mid-read — must use Defer instead:
//     deferred events carry no sequence number until Flush sorts them by
//     their content key and folds them in, so host scheduling cannot leak
//     into the export through emission order.
//   - The export sorts by (timestamp, sequence) and renders through
//     encoding/json with fixed field order, so two identical event sets
//     produce identical bytes.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Well-known process IDs of the export: the pipeline's spans live on one
// Perfetto "process", the cloud's fault/lifecycle plane on another.
const (
	PIDPipeline = 1
	PIDCloud    = 2
)

// Event phases (Chrome trace-event "ph" values).
const (
	PhaseComplete = 'X' // a span with a duration
	PhaseInstant  = 'i' // a point event
	PhaseCounter  = 'C' // a counter sample
)

// DefaultCapacity bounds the ring buffer when New is given zero: 64Ki
// events, comfortably a full 15-VM multi-sweep session.
const DefaultCapacity = 1 << 16

// Arg is one key/value annotation on an event. Args are kept as an ordered
// slice (not a map) so the content key used to sort deferred events is
// stable.
type Arg struct {
	Key, Val string
}

// Event is one trace record on the simulated timeline.
type Event struct {
	Seq   uint64
	TS    time.Duration // simulated time
	Dur   time.Duration // span length for PhaseComplete
	Phase byte
	Name  string
	Cat   string
	PID   int
	TID   int
	Args  []Arg
}

// key is the deterministic content ordering used for deferred events, which
// have no meaningful emission order.
func (e *Event) key() string {
	var sb strings.Builder
	sb.WriteString(e.Cat)
	sb.WriteByte(0)
	sb.WriteString(e.Name)
	sb.WriteByte(0)
	for _, a := range e.Args {
		sb.WriteString(a.Key)
		sb.WriteByte(0)
		sb.WriteString(a.Val)
		sb.WriteByte(0)
	}
	return sb.String()
}

// Tracer records events into a fixed-capacity ring buffer. All methods are
// nil-receiver-safe: instrumentation sites hold a possibly-nil *Tracer and
// call it unconditionally, so the disabled path costs one nil check.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	buf     []Event       // guarded by mu; ring, oldest overwritten once full
	next    int           // guarded by mu; ring write index
	full    bool          // guarded by mu
	seq     uint64        // guarded by mu
	dropped uint64        // guarded by mu
	cursor  time.Duration // guarded by mu
	pending []Event       // guarded by mu; deferred events awaiting Flush
}

// New creates a tracer with the given ring capacity (DefaultCapacity when
// n <= 0).
func New(n int) *Tracer {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Tracer{cap: n, buf: make([]Event, 0, n)}
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Cursor returns the current position of the simulated timeline cursor.
func (t *Tracer) Cursor() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cursor
}

// Advance moves the timeline cursor forward by d (negative d is ignored)
// and returns the new position.
func (t *Tracer) Advance(d time.Duration) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if d > 0 {
		t.cursor += d
	}
	return t.cursor
}

// AlignTo fast-forwards the cursor to ts if it lags behind it. Sweep
// drivers call this with the simulated clock at a quiesced boundary, so
// multi-sweep traces stay anchored to hypervisor time without ever reading
// the clock from a racing context.
func (t *Tracer) AlignTo(ts time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts > t.cursor {
		t.cursor = ts
	}
}

// record appends one event to the ring. Caller holds mu.
func (t *Tracer) record(e Event) {
	e.Seq = t.seq
	t.seq++
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.next] = e
	t.next = (t.next + 1) % t.cap
	t.full = true
	t.dropped++
}

// Emit records one fully specified event. Only call from deterministic
// single-threaded points (stage coordinators); worker-context code must use
// Defer.
func (t *Tracer) Emit(phase byte, name, cat string, pid, tid int, ts, dur time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Event{Phase: phase, Name: name, Cat: cat, PID: pid, TID: tid, TS: ts, Dur: dur, Args: args})
}

// Complete records a span [ts, ts+dur) — the workhorse for pipeline tasks
// and stage envelopes.
func (t *Tracer) Complete(name, cat string, pid, tid int, ts, dur time.Duration, args ...Arg) {
	t.Emit(PhaseComplete, name, cat, pid, tid, ts, dur, args...)
}

// Instant records a point event at ts.
func (t *Tracer) Instant(name, cat string, pid, tid int, ts time.Duration, args ...Arg) {
	t.Emit(PhaseInstant, name, cat, pid, tid, ts, 0, args...)
}

// Span is an open duration event: nothing is recorded until End, which
// renders it as one Complete event from its start timestamp to the cursor.
// A span from a nil tracer is nil and End on it is a no-op, mirroring the
// nil-safety of the Tracer methods.
type Span struct {
	t        *Tracer
	name     string
	cat      string
	pid, tid int
	start    time.Duration
}

// StartSpan opens a span whose eventual Complete event starts at ts.
// Like Emit, only call from deterministic single-threaded points; the
// caller owns the span and must End it exactly once.
//
//modsafe:acquires tracer-span
func (t *Tracer) StartSpan(name, cat string, pid, tid int, ts time.Duration) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, cat: cat, pid: pid, tid: tid, start: ts}
}

// End closes the span, recording it as a Complete event lasting from the
// span's start to the tracer's current cursor.
//
//modsafe:releases tracer-span
func (s *Span) End(args ...Arg) {
	if s == nil || s.t == nil {
		return
	}
	s.t.Complete(s.name, s.cat, s.pid, s.tid, s.start, s.t.Cursor()-s.start, args...)
	s.t = nil
}

// Defer buffers an event from a non-deterministic context (a bounded
// worker, a fault-plan read hook). Deferred events receive no sequence
// number and no timestamp until Flush, which orders them by content — so
// the same set of deferred events yields the same export bytes regardless
// of the host interleaving that produced them.
func (t *Tracer) Defer(name, cat string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pending = append(t.pending, Event{Phase: PhaseInstant, Name: name, Cat: cat, PID: PIDCloud, Args: args})
}

// Flush stamps every pending deferred event at the current cursor, orders
// them deterministically by content key, and moves them into the ring.
// Sweep drivers flush at sweep boundaries (every in-flight worker has
// joined, so the pending set is interleaving-independent); Export flushes
// once more as a backstop.
func (t *Tracer) Flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
}

func (t *Tracer) flushLocked() {
	if len(t.pending) == 0 {
		return
	}
	sort.SliceStable(t.pending, func(i, j int) bool {
		return t.pending[i].key() < t.pending[j].key()
	})
	for _, e := range t.pending {
		e.TS = t.cursor
		t.record(e)
	}
	t.pending = t.pending[:0]
}

// Dropped returns how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Reset discards all recorded and pending events and rewinds the sequence
// counter and cursor — benchmark iterations use it to keep memory flat.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = t.buf[:0]
	t.next = 0
	t.full = false
	t.seq = 0
	t.dropped = 0
	t.cursor = 0
	t.pending = t.pending[:0]
}

// Events returns the ring's events ordered by (timestamp, sequence),
// flushing pending deferred events first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// chromeEvent is the Chrome trace-event JSON shape. Field order is fixed by
// the struct; Args render as a map, which encoding/json marshals with
// sorted keys — everything about the byte stream is deterministic.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Ph    string            `json:"ph"`
	TS    float64           `json:"ts"` // microseconds
	Dur   *float64          `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Seq   uint64            `json:"seq"`
	Args  map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChromeJSON writes the trace in Chrome trace-event format: metadata
// naming the processes and worker lanes, then every event ordered by
// (simulated timestamp, sequence). Two runs from one seed produce
// byte-identical output.
//
//moddet:sink trace export must be byte-identical across runs
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: tracer is nil (tracing not enabled)")
	}
	events := t.Events()

	type lane struct{ pid, tid int }
	lanes := make(map[lane]bool)
	pids := make(map[int]bool)
	for _, e := range events {
		lanes[lane{e.PID, e.TID}] = true
		pids[e.PID] = true
	}
	var meta []chromeEvent
	addMeta := func(name string, pid, tid int, label string) {
		meta = append(meta, chromeEvent{
			Name: name, Cat: "__metadata", Ph: "M", PID: pid, TID: tid,
			Args: map[string]string{"name": label},
		})
	}
	pidName := map[int]string{PIDPipeline: "modchecker pipeline", PIDCloud: "cloud events"}
	for _, pid := range sortedKeys(pids) {
		label := pidName[pid]
		if label == "" {
			label = fmt.Sprintf("pid %d", pid)
		}
		addMeta("process_name", pid, 0, label)
	}
	laneKeys := make([]lane, 0, len(lanes))
	for l := range lanes {
		laneKeys = append(laneKeys, l)
	}
	sort.Slice(laneKeys, func(i, j int) bool {
		if laneKeys[i].pid != laneKeys[j].pid {
			return laneKeys[i].pid < laneKeys[j].pid
		}
		return laneKeys[i].tid < laneKeys[j].tid
	})
	for _, l := range laneKeys {
		label := fmt.Sprintf("worker %d", l.tid)
		if l.tid == 0 {
			label = "coordinator"
		}
		if l.pid == PIDCloud {
			label = "fault plane"
		}
		addMeta("thread_name", l.pid, l.tid, label)
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: meta}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(rune(e.Phase)),
			TS:   micros(e.TS),
			PID:  e.PID,
			TID:  e.TID,
			Seq:  e.Seq,
		}
		if e.Phase == PhaseComplete {
			d := micros(e.Dur)
			ce.Dur = &d
		}
		if e.Phase == PhaseInstant {
			ce.Scope = "t"
		}
		if len(e.Args) > 0 {
			ce.Args = make(map[string]string, len(e.Args))
			for _, a := range e.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
