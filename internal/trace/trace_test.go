package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Complete("x", "c", 1, 0, 0, time.Millisecond)
	tr.Instant("y", "c", 1, 0, 0)
	tr.Defer("z", "c")
	tr.Flush()
	tr.Advance(time.Second)
	tr.AlignTo(time.Second)
	tr.Reset()
	if tr.Enabled() || tr.Cursor() != 0 || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer should be inert")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer Events should be nil")
	}
	if err := tr.WriteChromeJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer export should error")
	}
	if sp := tr.StartSpan("s", "c", 1, 0, 0); sp != nil {
		t.Fatal("nil tracer should hand out a nil span")
	}
	var sp *Span
	sp.End() // no-op, must not panic
}

// TestSpanMatchesComplete pins that the StartSpan/End pair records exactly
// the event an explicit Complete call would, with the duration measured to
// the cursor at End time, and that a double End records nothing extra.
func TestSpanMatchesComplete(t *testing.T) {
	tr := New(8)
	tr.Advance(2 * time.Millisecond)
	sp := tr.StartSpan("sweep 1", "scanner", 3, 0, time.Millisecond)
	tr.Advance(5 * time.Millisecond)
	sp.End(Arg{Key: "modules", Val: "4"})
	sp.End() // second End is a no-op

	ev := tr.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events, want 1", len(ev))
	}
	e := ev[0]
	if e.Phase != PhaseComplete || e.Name != "sweep 1" || e.Cat != "scanner" || e.PID != 3 {
		t.Errorf("event = %+v", e)
	}
	if e.TS != time.Millisecond || e.Dur != 6*time.Millisecond {
		t.Errorf("span [%v, +%v), want [1ms, +6ms)", e.TS, e.Dur)
	}
	if len(e.Args) != 1 || e.Args[0].Key != "modules" {
		t.Errorf("args = %+v", e.Args)
	}
}

func TestCursor(t *testing.T) {
	tr := New(8)
	tr.Advance(10 * time.Millisecond)
	tr.Advance(-5 * time.Millisecond) // ignored
	if tr.Cursor() != 10*time.Millisecond {
		t.Fatalf("cursor = %v", tr.Cursor())
	}
	tr.AlignTo(5 * time.Millisecond) // behind, ignored
	if tr.Cursor() != 10*time.Millisecond {
		t.Fatalf("cursor = %v after lagging AlignTo", tr.Cursor())
	}
	tr.AlignTo(30 * time.Millisecond)
	if tr.Cursor() != 30*time.Millisecond {
		t.Fatalf("cursor = %v after AlignTo", tr.Cursor())
	}
}

func TestRingOverflow(t *testing.T) {
	tr := New(4)
	for i := 0; i < 6; i++ {
		tr.Instant("e", "c", 1, 0, time.Duration(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	// Oldest two (ts 0, 1) were overwritten.
	if evs[0].TS != 2 || evs[len(evs)-1].TS != 5 {
		t.Fatalf("ring window = [%v, %v]", evs[0].TS, evs[len(evs)-1].TS)
	}
}

func TestEventsSortedBySimTimeThenSeq(t *testing.T) {
	tr := New(0)
	tr.Instant("late", "c", 1, 0, 20)
	tr.Instant("early", "c", 1, 0, 10)
	tr.Instant("early2", "c", 1, 0, 10)
	evs := tr.Events()
	if evs[0].Name != "early" || evs[1].Name != "early2" || evs[2].Name != "late" {
		t.Fatalf("order = %s, %s, %s", evs[0].Name, evs[1].Name, evs[2].Name)
	}
}

// Deferred events from racing goroutines must come out in content order,
// independent of which goroutine got there first.
func TestDeferFlushDeterministic(t *testing.T) {
	run := func() []Event {
		tr := New(0)
		tr.Advance(7 * time.Millisecond)
		var wg sync.WaitGroup
		for _, name := range []string{"zeta", "alpha", "mid"} {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				tr.Defer(n, "fault", Arg{"vm", n})
			}(name)
		}
		wg.Wait()
		tr.Flush()
		return tr.Events()
	}
	for i := 0; i < 20; i++ {
		evs := run()
		if len(evs) != 3 {
			t.Fatalf("events = %d", len(evs))
		}
		if evs[0].Name != "alpha" || evs[1].Name != "mid" || evs[2].Name != "zeta" {
			t.Fatalf("iteration %d: order = %s, %s, %s", i, evs[0].Name, evs[1].Name, evs[2].Name)
		}
		for _, e := range evs {
			if e.TS != 7*time.Millisecond {
				t.Fatalf("deferred ts = %v, want flush cursor", e.TS)
			}
		}
	}
}

func TestReset(t *testing.T) {
	tr := New(4)
	tr.Instant("e", "c", 1, 0, 1)
	tr.Defer("d", "c")
	tr.Advance(time.Second)
	tr.Reset()
	if tr.Len() != 0 || tr.Cursor() != 0 || tr.Dropped() != 0 || len(tr.Events()) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func buildTrace() *Tracer {
	tr := New(0)
	tr.Complete("fetch vm-0", "fetch", PIDPipeline, 1, 0, 2*time.Millisecond, Arg{"module", "ntoskrnl"})
	tr.Complete("fetch vm-1", "fetch", PIDPipeline, 2, 0, 3*time.Millisecond)
	tr.Advance(3 * time.Millisecond)
	tr.Instant("sweep end", "scanner", PIDPipeline, 0, tr.Cursor())
	tr.Defer("inject", "fault", Arg{"vm", "vm-1"}, Arg{"kind", "read_error"})
	return tr
}

func TestChromeJSONByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace().WriteChromeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildTrace().WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("exports differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestChromeJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if meta == 0 || spans != 2 || instants != 2 {
		t.Fatalf("meta=%d spans=%d instants=%d", meta, spans, instants)
	}
	if !strings.Contains(buf.String(), "modchecker pipeline") {
		t.Fatal("missing process_name metadata")
	}
	if !strings.Contains(buf.String(), `"s": "t"`) {
		t.Fatal("instant events must carry thread scope")
	}
}
