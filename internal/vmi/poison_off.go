//go:build !modpoison

package vmi

// poisonBuf is a no-op in normal builds. Build with -tags modpoison to
// make every shadow-buffer recycle scribble the returned bytes; see
// poison_on.go.
func poisonBuf([]byte) {}
