//go:build modpoison

package vmi

// The modpoison build tag turns every shadow-buffer recycle into a
// scribble: putShadow overwrites the bytes being returned with 0xDB before
// the pool takes them back, so a ReadVAConsistent caller that keeps a
// reference into the verify-pass shadow — or a double-put handing one
// shadow to two concurrent reads — shows up as garbage comparisons and
// failing differential tests instead of rare, order-dependent flakiness.
// It mirrors internal/core's poisonBuf for the fetch and scratch pools;
// the chaos-smoke CI leg runs one seed under this tag.
func poisonBuf(b []byte) {
	for i := range b {
		b[i] = 0xDB
	}
}
