package vmi

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modchecker/internal/mm"
)

// chargedOpen opens a handle that accumulates nominal charges into *total.
func chargedOpen(t testing.TB, total *time.Duration, extra ...Option) *Handle {
	t.Helper()
	g := testGuest(t)
	var mu sync.Mutex
	opts := append([]Option{WithCharge(func(d time.Duration) {
		mu.Lock()
		*total += d
		mu.Unlock()
	})}, extra...)
	return open(t, g, opts...)
}

func TestTranslationCacheHit(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	base := g.Module("alpha.sys").Base
	buf := make([]byte, 64)
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	s := h.Stats()
	if s.PTWalks != 1 || s.TLBHits != 0 {
		t.Fatalf("cold read: %+v, want 1 walk / 0 hits", s)
	}
	// Same page again: the software TLB must serve the translation.
	if err := h.ReadVA(base+128, buf); err != nil {
		t.Fatal(err)
	}
	s = h.Stats()
	if s.PTWalks != 1 || s.TLBHits != 1 {
		t.Errorf("warm read: %+v, want 1 walk / 1 hit", s)
	}
}

func TestTranslationCacheHitCost(t *testing.T) {
	var total time.Duration
	h := chargedOpen(t, &total)
	base := uint32(0)
	// Find a module base via the handle's own guest: reuse symbol resolution
	// instead (PsLoadedModuleList head page is mapped).
	headVA, err := h.SymbolVA("PsLoadedModuleList")
	if err != nil {
		t.Fatal(err)
	}
	base = headVA
	buf := make([]byte, 4)
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	cold := total
	if cold != CostPTWalk+CostPageRead {
		t.Errorf("cold read charged %v, want %v", cold, CostPTWalk+CostPageRead)
	}
	total = 0
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	if total != CostTLBHit+CostPageRead {
		t.Errorf("warm read charged %v, want %v", total, CostTLBHit+CostPageRead)
	}
}

func TestWithoutTranslationCache(t *testing.T) {
	g := testGuest(t)
	h := open(t, g, WithoutTranslationCache())
	base := g.Module("alpha.sys").Base
	buf := make([]byte, 8)
	for i := 0; i < 3; i++ {
		if err := h.ReadVA(base, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := h.Stats()
	if s.PTWalks != 3 || s.TLBHits != 0 {
		t.Errorf("uncached handle: %+v, want 3 walks / 0 hits", s)
	}
}

func TestInvalidateTranslations(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	base := g.Module("alpha.sys").Base
	buf := make([]byte, 8)
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	h.InvalidateTranslations()
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	s := h.Stats()
	if s.PTWalks != 2 || s.TLBHits != 0 {
		t.Errorf("after explicit invalidation: %+v, want 2 walks / 0 hits", s)
	}
}

func TestEpochInvalidation(t *testing.T) {
	g := testGuest(t)
	var epoch atomic.Uint64
	h := open(t, g, WithInvalidation(epoch.Load))
	base := g.Module("alpha.sys").Base
	buf := make([]byte, 8)
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	if s := h.Stats(); s.TLBHits != 1 {
		t.Fatalf("pre-invalidation: %+v, want 1 hit", s)
	}
	// The epoch source moving (a snapshot revert, a lifecycle event) must
	// flush every cached translation on the next lookup.
	epoch.Add(1)
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	s := h.Stats()
	if s.PTWalks != 2 || s.TLBHits != 1 {
		t.Errorf("post-invalidation: %+v, want 2 walks / 1 hit", s)
	}
}

func TestSharedStatsAggregate(t *testing.T) {
	g := testGuest(t)
	var shared SharedStats
	h1 := open(t, g, WithSharedStats(&shared))
	h2 := open(t, g, WithSharedStats(&shared))
	base := g.Module("alpha.sys").Base
	buf := make([]byte, mm.PageSize)
	if err := h1.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	if err := h2.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	s := shared.Snapshot()
	if s.PTWalks != 2 || s.PagesRead != 2 {
		t.Errorf("shared stats: %+v, want 2 walks / 2 pages across handles", s)
	}
	if s.BytesRead != 2*uint64(len(buf)) {
		t.Errorf("shared BytesRead = %d", s.BytesRead)
	}
}
