// Package vmi is the reproduction's libVMI: virtual machine introspection
// primitives that let a privileged domain read another VM's memory without
// any cooperation from the guest.
//
// A Handle is opened per target VM with the guest's physical memory, its
// CR3 and an OS Profile (symbol map). Virtual reads perform a genuine
// external page-table walk per page touched — introspection never consults
// guest-side software state, only the raw bytes the hypervisor exposes.
// Handles are strictly read-only, matching ModChecker's design (paper
// Section III-B: "through introspection it performs read-only operations
// of the memory of guest VMs").
//
// Every operation can be charged to a cost model (WithCharge), which the
// cloud facade wires to the hypervisor's contention-aware clock. The
// default per-page cost reflects libVMI's behavior the paper calls out:
// copying a module requires "an iterative access of the memory until the
// whole module is copied", making Module-Searcher the dominant component.
package vmi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"modchecker/internal/faults"
	"modchecker/internal/metrics"
	"modchecker/internal/mm"
	"modchecker/internal/nt"
)

// Nominal costs of introspection primitives, before contention stretching.
// Magnitudes are calibrated to libVMI-era measurements: mapping and copying
// one guest page from Dom0 costs tens of microseconds, a software page-table
// walk a few.
const (
	CostPageRead = 25 * time.Microsecond
	CostPTWalk   = 3 * time.Microsecond
	// CostTLBHit is the cost of serving a translation from the handle's
	// software TLB instead of re-walking the guest page tables: a map
	// lookup in Dom0, an order of magnitude cheaper than the walk.
	CostTLBHit = 300 * time.Nanosecond
	// CostMapSetup is the one-time cost of establishing a bulk mapping of
	// a guest region (the ablation alternative to page-wise copying).
	CostMapSetup = 120 * time.Microsecond
	// CostMappedPage is the per-page cost once a bulk mapping exists.
	CostMappedPage = 6 * time.Microsecond
)

// ErrSymbol is returned for unknown profile symbols.
var ErrSymbol = errors.New("vmi: unknown symbol")

// ErrTornRead is returned by ReadVAConsistent when the guest kept mutating
// the range faster than the verify loop could confirm a stable copy. The
// condition clears once the guest's write burst ends, so it is classified
// transient: callers retry with backoff rather than flagging the VM.
var ErrTornRead = faults.Transient("vmi: torn read (guest mutated range during copy)")

// shadowPool recycles the verify-pass shadow buffers of ReadVAConsistent:
// every verified module copy otherwise allocates a second module-sized
// buffer just to compare passes against.
var shadowPool = sync.Pool{New: func() any { return new([]byte) }}

// getShadow returns a pooled shadow buffer of length n.
//
//modown:pool shadow get
func getShadow(n int) *[]byte {
	sp := shadowPool.Get().(*[]byte)
	if cap(*sp) < n {
		*sp = make([]byte, n)
	}
	*sp = (*sp)[:n]
	return sp
}

// putShadow returns a shadow buffer to the pool. Under -tags modpoison the
// bytes are scribbled first, so any reference kept across the put reads
// garbage instead of stale verify-pass data.
//
//modown:pool shadow put
func putShadow(sp *[]byte) {
	poisonBuf((*sp)[:cap(*sp)])
	shadowPool.Put(sp)
}

// Profile carries what libVMI reads from its OS config: which operating
// system the guest runs and where its exported globals live. All VMs cloned
// from one installation share a profile.
type Profile struct {
	OSName  string
	Symbols map[string]uint32
}

// XPSP2Profile returns the profile for the simulated 32-bit Windows XP SP2
// guests built by internal/guest.
func XPSP2Profile(psLoadedModuleList uint32) Profile {
	return Profile{
		OSName: "WinXPSP2x86",
		Symbols: map[string]uint32{
			"PsLoadedModuleList": psLoadedModuleList,
		},
	}
}

// Stats counts the introspection work a handle has performed. The counters
// are exact per strategy: PTWalks counts genuine external page-table walks
// (TLB misses once a translation cache is active), TLBHits counts
// translations served from the cache, and PagesMapped is the subset of
// PagesRead copied under a bulk mapping — so a stats delta converts to
// nominal cost without approximating which strategy a window used.
type Stats struct {
	PTWalks     uint64
	TLBHits     uint64
	PagesRead   uint64
	PagesMapped uint64
	BytesRead   uint64
	MapSetups   uint64
}

// SharedStats is a concurrency-safe aggregation sink: every handle opened
// with WithSharedStats adds its work to it, giving a pool-wide view (the
// cloud facade keeps one per testbed so benchmarks can report PTWalks and
// TLB hit rates across all VMs of a sweep). The counters are
// metrics.Counter values so the same figures publish through a
// metrics.Registry via Bind without double-counting.
type SharedStats struct {
	ptWalks     metrics.Counter
	tlbHits     metrics.Counter
	pagesRead   metrics.Counter
	pagesMapped metrics.Counter
	bytesRead   metrics.Counter
	mapSetups   metrics.Counter
}

// Snapshot returns the current aggregate counters.
func (s *SharedStats) Snapshot() Stats {
	return Stats{
		PTWalks:     s.ptWalks.Load(),
		TLBHits:     s.tlbHits.Load(),
		PagesRead:   s.pagesRead.Load(),
		PagesMapped: s.pagesMapped.Load(),
		BytesRead:   s.bytesRead.Load(),
		MapSetups:   s.mapSetups.Load(),
	}
}

// Bind publishes the aggregate counters through the registry as
// read-on-snapshot sources under the vmi/ prefix. The handles keep
// incrementing the same counters; the registry reads them at export time.
func (s *SharedStats) Bind(r *metrics.Registry) {
	r.RegisterFunc("vmi/pt_walks", s.ptWalks.Load)
	r.RegisterFunc("vmi/tlb_hits", s.tlbHits.Load)
	r.RegisterFunc("vmi/pages_read", s.pagesRead.Load)
	r.RegisterFunc("vmi/pages_mapped", s.pagesMapped.Load)
	r.RegisterFunc("vmi/bytes_read", s.bytesRead.Load)
	r.RegisterFunc("vmi/map_setups", s.mapSetups.Load)
}

// Handle is one introspection session on one VM.
type Handle struct {
	vmName  string
	mem     mm.PhysReader
	cr3     uint32
	profile Profile
	charge  func(time.Duration)
	shared  *SharedStats
	epoch   func() uint64 // mapping-epoch source; nil = never invalidated
	noTLB   bool

	ptWalks     metrics.Counter
	tlbHits     metrics.Counter
	pagesRead   metrics.Counter
	pagesMapped metrics.Counter
	bytesRead   metrics.Counter
	mapSetups   metrics.Counter

	tlbMu  sync.Mutex
	tlb    map[uint32]uint32 // VPN -> PFN; the software TLB
	tlbGen uint64            // epoch value the TLB was filled under
}

// Option configures a Handle.
type Option func(*Handle)

// WithCharge installs a cost hook invoked with the nominal duration of each
// introspection primitive. The cloud facade points this at
// Hypervisor.ChargeDom0 so contention stretches the simulated runtime.
func WithCharge(f func(time.Duration)) Option {
	return func(h *Handle) { h.charge = f }
}

// WithSharedStats makes the handle also add its work counters to the given
// aggregation sink, in addition to its own per-handle stats.
func WithSharedStats(s *SharedStats) Option {
	return func(h *Handle) { h.shared = s }
}

// WithInvalidation installs a mapping-epoch source: whenever the returned
// value differs from the one the TLB was filled under, the cache is flushed
// before the next lookup. The cloud facade wires this to the domain's
// epoch, which the hypervisor bumps on snapshot revert and on fault-plan
// lifecycle events — the points where cached translations can go stale.
func WithInvalidation(epoch func() uint64) Option {
	return func(h *Handle) { h.epoch = epoch }
}

// WithoutTranslationCache disables the software TLB: every translation
// pays a full external page-table walk, the pre-cache (paper-faithful)
// behavior. Used by the legacy benchmark baseline.
func WithoutTranslationCache() Option {
	return func(h *Handle) { h.noTLB = true }
}

// Open creates a handle on a VM given the hypervisor-exposed physical
// memory, the vCPU's CR3 and the OS profile.
func Open(vmName string, mem mm.PhysReader, cr3 uint32, profile Profile, opts ...Option) *Handle {
	h := &Handle{vmName: vmName, mem: mem, cr3: cr3, profile: profile}
	for _, o := range opts {
		o(h)
	}
	return h
}

// VMName returns the name of the introspected VM.
func (h *Handle) VMName() string { return h.vmName }

// Stats returns a snapshot of the handle's work counters.
func (h *Handle) Stats() Stats {
	return Stats{
		PTWalks:     h.ptWalks.Load(),
		TLBHits:     h.tlbHits.Load(),
		PagesRead:   h.pagesRead.Load(),
		PagesMapped: h.pagesMapped.Load(),
		BytesRead:   h.bytesRead.Load(),
		MapSetups:   h.mapSetups.Load(),
	}
}

// pay forwards simulated introspection cost to the handle's charge hook
// (WithCharge); handles opened without one simply drop the cost.
//
//modsafe:charges forwards cost to the simulated clock via WithCharge
func (h *Handle) pay(d time.Duration) {
	if h.charge != nil {
		h.charge(d)
	}
}

// SymbolVA resolves a profile symbol to its guest VA.
func (h *Handle) SymbolVA(name string) (uint32, error) {
	va, ok := h.profile.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrSymbol, name)
	}
	return va, nil
}

// Translate resolves va to a guest-physical address. Translations are
// served from a per-handle page-granular software TLB when possible (a
// cheap Dom0 map lookup, charged at CostTLBHit); a miss performs the full
// external page-table walk (CostPTWalk) and caches the page mapping. The
// cache is flushed whenever the handle's mapping epoch changes — snapshot
// reverts and fault-plan lifecycle events bump it — so stale translations
// never survive a guest-state rollback.
//
//modsafe:spends page-table walk or TLB fill
func (h *Handle) Translate(va uint32) (uint32, error) {
	if pfn, ok := h.tlbLookup(va); ok {
		h.tlbHits.Add(1)
		if h.shared != nil {
			h.shared.tlbHits.Add(1)
		}
		h.pay(CostTLBHit)
		return pfn<<mm.PageShift | va&(mm.PageSize-1), nil
	}
	h.ptWalks.Add(1)
	if h.shared != nil {
		h.shared.ptWalks.Add(1)
	}
	h.pay(CostPTWalk)
	pa, err := mm.WalkPageTables(h.mem, h.cr3, va)
	if err == nil {
		h.tlbInsert(va, pa)
	}
	return pa, err
}

// InvalidateTranslations drops every cached translation. Reads after the
// call pay full page-table walks again until the cache re-warms.
func (h *Handle) InvalidateTranslations() {
	h.tlbMu.Lock()
	defer h.tlbMu.Unlock()
	h.tlb = nil
}

// tlbLookup consults the software TLB, flushing it first if the mapping
// epoch moved since it was filled.
func (h *Handle) tlbLookup(va uint32) (uint32, bool) {
	if h.noTLB {
		return 0, false
	}
	var gen uint64
	if h.epoch != nil {
		gen = h.epoch()
	}
	h.tlbMu.Lock()
	defer h.tlbMu.Unlock()
	if gen != h.tlbGen {
		h.tlb = nil
		h.tlbGen = gen
	}
	if h.tlb == nil {
		return 0, false
	}
	pfn, ok := h.tlb[va>>mm.PageShift]
	return pfn, ok
}

// tlbInsert caches a completed translation, unless the mapping epoch moved
// while the walk was in flight (the walk may have read superseded tables).
func (h *Handle) tlbInsert(va, pa uint32) {
	if h.noTLB {
		return
	}
	var gen uint64
	if h.epoch != nil {
		gen = h.epoch()
	}
	h.tlbMu.Lock()
	defer h.tlbMu.Unlock()
	if gen != h.tlbGen {
		h.tlb = nil
		h.tlbGen = gen
		return
	}
	if h.tlb == nil {
		h.tlb = make(map[uint32]uint32)
	}
	h.tlb[va>>mm.PageShift] = pa >> mm.PageShift
}

// ReadVA copies len(b) bytes of guest virtual memory starting at va. The
// copy proceeds page by page: one translation and one page read per page
// touched, the access pattern the paper identifies as Module-Searcher's
// dominant cost.
//
//modsafe:spends page-wise physical reads
func (h *Handle) ReadVA(va uint32, b []byte) error {
	for len(b) > 0 {
		pa, err := h.Translate(va)
		if err != nil {
			return fmt.Errorf("vmi %s: read at %#x: %w", h.vmName, va, err)
		}
		off := va & (mm.PageSize - 1)
		n := uint32(mm.PageSize - off)
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if err := h.mem.ReadPhys(pa, b[:n]); err != nil {
			return fmt.Errorf("vmi %s: read at %#x: %w", h.vmName, va, err)
		}
		h.pagesRead.Add(1)
		h.bytesRead.Add(uint64(n))
		if h.shared != nil {
			h.shared.pagesRead.Add(1)
			h.shared.bytesRead.Add(uint64(n))
		}
		h.pay(CostPageRead)
		b = b[n:]
		va += n
	}
	return nil
}

// ReadVAConsistent copies like ReadVA but detects concurrent guest
// mutation (the torn-read hazard of introspecting a running VM): after the
// initial copy it re-reads the range and compares, repeating until two
// consecutive passes agree or maxPasses total passes have run, then returns
// the last pass's bytes in b along with the pass count. Every pass performs
// full page-wise reads and is charged accordingly — consistency costs
// introspection time, which is why the Searcher only pays it when a retry
// policy asks for verified reads. Fewer than two passes can never verify,
// so maxPasses is clamped to 2.
//
//modsafe:spends multi-pass physical reads
func (h *Handle) ReadVAConsistent(va uint32, b []byte, maxPasses int) (int, error) {
	if maxPasses < 2 {
		maxPasses = 2
	}
	if err := h.ReadVA(va, b); err != nil {
		return 1, err
	}
	sp := getShadow(len(b))
	shadow := (*sp)[:len(b)]
	defer putShadow(sp)
	for pass := 2; pass <= maxPasses; pass++ {
		if err := h.ReadVA(va, shadow); err != nil {
			return pass, err
		}
		if bytes.Equal(b, shadow) {
			return pass, nil
		}
		// The range changed under us; adopt the newer copy and confirm it
		// against the next pass.
		copy(b, shadow)
	}
	return maxPasses, fmt.Errorf("vmi %s: read at %#x after %d passes: %w", h.vmName, va, maxPasses, ErrTornRead)
}

// MapRange is the bulk alternative to ReadVA used by the copy-strategy
// ablation: it establishes one mapping of the whole [va, va+size) region
// (one setup charge, then a reduced per-page charge) and returns the bytes.
// Real libVMI gained such batched mappings after the paper's version; the
// paper's ModChecker uses the page-wise path.
//
//modsafe:spends batched mapping setup and physical reads
//modown:borrowed callers treat the mapping as a zero-copy hypervisor view
func (h *Handle) MapRange(va, size uint32) ([]byte, error) {
	h.mapSetups.Add(1)
	if h.shared != nil {
		h.shared.mapSetups.Add(1)
	}
	h.pay(CostMapSetup)
	out := make([]byte, size)
	b := out
	for len(b) > 0 {
		// Translation still happens per page, but batched — and it goes
		// through the same software TLB as page-wise reads, so repeated
		// mappings of one region (the verified-copy path) re-walk nothing.
		pa, err := h.Translate(va)
		if err != nil {
			return nil, fmt.Errorf("vmi %s: map at %#x: %w", h.vmName, va, err)
		}
		off := va & (mm.PageSize - 1)
		n := uint32(mm.PageSize - off)
		if int(n) > len(b) {
			n = uint32(len(b))
		}
		if err := h.mem.ReadPhys(pa, b[:n]); err != nil {
			return nil, fmt.Errorf("vmi %s: map at %#x: %w", h.vmName, va, err)
		}
		h.pagesRead.Add(1)
		h.pagesMapped.Add(1)
		h.bytesRead.Add(uint64(n))
		if h.shared != nil {
			h.shared.pagesRead.Add(1)
			h.shared.pagesMapped.Add(1)
			h.shared.bytesRead.Add(uint64(n))
		}
		h.pay(CostMappedPage)
		b = b[n:]
		va += n
	}
	return out, nil
}

// ReadU32 reads a little-endian 32-bit value at va.
//
//modsafe:spends guest virtual read
func (h *Handle) ReadU32(va uint32) (uint32, error) {
	var b [4]byte
	if err := h.ReadVA(va, b[:]); err != nil {
		return 0, err
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, nil
}

// ReadListEntry reads a LIST_ENTRY at va.
//
//modsafe:spends guest virtual read
func (h *Handle) ReadListEntry(va uint32) (nt.ListEntry, error) {
	b := make([]byte, nt.ListEntrySize)
	if err := h.ReadVA(va, b); err != nil {
		return nt.ListEntry{}, err
	}
	return nt.DecodeListEntry(b)
}

// ReadLdrEntry reads an LDR_DATA_TABLE_ENTRY at va.
//
//modsafe:spends guest virtual read
func (h *Handle) ReadLdrEntry(va uint32) (*nt.LdrDataTableEntry, error) {
	b := make([]byte, nt.LdrDataTableEntrySize)
	if err := h.ReadVA(va, b); err != nil {
		return nil, err
	}
	return nt.DecodeLdrDataTableEntry(b)
}

// ReadUnicodeString reads a UNICODE_STRING at va and then its buffer,
// returning the decoded Go string.
//
//modsafe:spends guest virtual reads
func (h *Handle) ReadUnicodeString(va uint32) (string, error) {
	b := make([]byte, nt.UnicodeStringSize)
	if err := h.ReadVA(va, b); err != nil {
		return "", err
	}
	us, err := nt.DecodeUnicodeString(b)
	if err != nil {
		return "", err
	}
	if us.Length == 0 {
		return "", nil
	}
	buf := make([]byte, us.Length)
	if err := h.ReadVA(us.Buffer, buf); err != nil {
		return "", err
	}
	return nt.DecodeUTF16(buf)
}
