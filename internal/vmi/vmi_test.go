package vmi

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"modchecker/internal/faults"
	"modchecker/internal/guest"
	"modchecker/internal/mm"
	"modchecker/internal/nt"
)

func testGuest(t testing.TB) *guest.Guest {
	t.Helper()
	img, err := guest.BuildImage(guest.ModuleSpec{
		Name: "alpha.sys", TextSize: 16 << 10, DataSize: 4 << 10, RdataSize: 1 << 10,
		PreferredBase: 0x10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := guest.New(guest.Config{
		Name: "vm1", MemBytes: 16 << 20, BootSeed: 1,
		Disk: map[string][]byte{"alpha.sys": img},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func open(t testing.TB, g *guest.Guest, opts ...Option) *Handle {
	t.Helper()
	return Open(g.Name(), g.Phys(), g.CR3(), XPSP2Profile(guest.PsLoadedModuleListVA), opts...)
}

func TestSymbolVA(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	va, err := h.SymbolVA("PsLoadedModuleList")
	if err != nil || va != guest.PsLoadedModuleListVA {
		t.Errorf("SymbolVA = %#x, %v", va, err)
	}
	if _, err := h.SymbolVA("KdDebuggerDataBlock"); !errors.Is(err, ErrSymbol) {
		t.Errorf("unknown symbol: %v", err)
	}
}

func TestVMName(t *testing.T) {
	h := open(t, testGuest(t))
	if h.VMName() != "vm1" {
		t.Errorf("VMName = %q", h.VMName())
	}
}

func TestTranslateMatchesGuest(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	mod := g.Module("alpha.sys")
	want, err := g.AddressSpace().Translate(mod.Base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Translate(mod.Base)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Translate = %#x, want %#x", got, want)
	}
}

func TestReadVAMatchesGuestMemory(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	mod := g.Module("alpha.sys")
	want := make([]byte, mod.SizeOfImage)
	if err := g.AddressSpace().Read(mod.Base, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, mod.SizeOfImage)
	if err := h.ReadVA(mod.Base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("introspected bytes differ from guest view")
	}
}

func TestReadVAUnmapped(t *testing.T) {
	h := open(t, testGuest(t))
	if err := h.ReadVA(0xDEAD0000, make([]byte, 4)); err == nil {
		t.Error("read of unmapped VA succeeded")
	}
}

func TestReadU32(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	mod := g.Module("alpha.sys")
	v, err := h.ReadU32(mod.Base)
	if err != nil {
		t.Fatal(err)
	}
	// "MZ" + e_cblp(0x90).
	if v&0xFFFF != 0x5A4D {
		t.Errorf("ReadU32(base) = %#x, want MZ magic in low half", v)
	}
}

func TestReadLdrEntryAndUnicode(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	head, err := h.ReadListEntry(guest.PsLoadedModuleListVA)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := h.ReadLdrEntry(head.Flink)
	if err != nil {
		t.Fatal(err)
	}
	if entry.DllBase != g.Module("alpha.sys").Base {
		t.Errorf("DllBase = %#x", entry.DllBase)
	}
	// Read the name through the UNICODE_STRING header.
	nameVA := head.Flink + nt.OffBaseDllName
	name, err := h.ReadUnicodeString(nameVA)
	if err != nil {
		t.Fatal(err)
	}
	if name != "alpha.sys" {
		t.Errorf("name = %q", name)
	}
}

func TestReadUnicodeStringEmpty(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	// The list head itself decodes as a UNICODE_STRING with garbage; craft
	// an empty one in scratch memory instead: write zero-length string
	// header into guest memory via the guest side.
	const va = 0x80700000
	if _, err := g.AddressSpace().AllocAndMap(va, mm.PageSize, mm.PteWritable); err != nil {
		t.Fatal(err)
	}
	us := nt.UnicodeString{Length: 0, MaximumLength: 0, Buffer: 0}
	if err := g.AddressSpace().Write(va, nt.EncodeUnicodeString(us)); err != nil {
		t.Fatal(err)
	}
	s, err := h.ReadUnicodeString(va)
	if err != nil || s != "" {
		t.Errorf("got %q, %v", s, err)
	}
}

func TestStatsCount(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	mod := g.Module("alpha.sys")
	buf := make([]byte, 3*mm.PageSize)
	if err := h.ReadVA(mod.Base, buf); err != nil {
		t.Fatal(err)
	}
	s := h.Stats()
	if s.PagesRead != 3 || s.PTWalks != 3 {
		t.Errorf("stats = %+v, want 3 pages / 3 walks", s)
	}
	if s.BytesRead != uint64(len(buf)) {
		t.Errorf("BytesRead = %d", s.BytesRead)
	}
}

func TestChargeHook(t *testing.T) {
	g := testGuest(t)
	var mu sync.Mutex
	var total time.Duration
	h := open(t, g, WithCharge(func(d time.Duration) {
		mu.Lock()
		total += d
		mu.Unlock()
	}))
	mod := g.Module("alpha.sys")
	if err := h.ReadVA(mod.Base, make([]byte, 2*mm.PageSize)); err != nil {
		t.Fatal(err)
	}
	want := 2*CostPageRead + 2*CostPTWalk
	if total != want {
		t.Errorf("charged %v, want %v", total, want)
	}
}

func TestMapRangeMatchesReadVA(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	mod := g.Module("alpha.sys")
	a := make([]byte, mod.SizeOfImage)
	if err := h.ReadVA(mod.Base, a); err != nil {
		t.Fatal(err)
	}
	b, err := h.MapRange(mod.Base, mod.SizeOfImage)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("MapRange content differs from ReadVA")
	}
	if h.Stats().MapSetups != 1 {
		t.Errorf("MapSetups = %d", h.Stats().MapSetups)
	}
}

func TestMapRangeCheaperThanPageWise(t *testing.T) {
	g := testGuest(t)
	mod := g.Module("alpha.sys")
	cost := func(f func(h *Handle)) time.Duration {
		var total time.Duration
		h := open(t, g, WithCharge(func(d time.Duration) { total += d }))
		f(h)
		return total
	}
	pw := cost(func(h *Handle) { h.ReadVA(mod.Base, make([]byte, mod.SizeOfImage)) })
	mp := cost(func(h *Handle) { h.MapRange(mod.Base, mod.SizeOfImage) })
	if mp >= pw {
		t.Errorf("mapped copy (%v) not cheaper than page-wise (%v)", mp, pw)
	}
}

func TestReadVAUnalignedStart(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	mod := g.Module("alpha.sys")
	want := make([]byte, 100)
	g.AddressSpace().Read(mod.Base+mm.PageSize-50, want)
	got := make([]byte, 100)
	if err := h.ReadVA(mod.Base+mm.PageSize-50, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("unaligned cross-page read mismatch")
	}
}

// TestIntrospectionIsOutOfBand verifies the property Figure 9 rests on:
// introspecting a guest does not disturb any guest-visible state.
func TestIntrospectionIsOutOfBand(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	g.Tick(100)
	before := g.Sample()
	mod := g.Module("alpha.sys")
	for i := 0; i < 50; i++ {
		if err := h.ReadVA(mod.Base, make([]byte, mod.SizeOfImage)); err != nil {
			t.Fatal(err)
		}
	}
	after := g.Sample()
	// Page-fault and uptime counters change only via Tick; VMI reads must
	// leave uptime identical and memory content identical.
	if after.TimeMS != before.TimeMS {
		t.Error("introspection advanced guest time")
	}
	buf1 := make([]byte, mod.SizeOfImage)
	g.AddressSpace().Read(mod.Base, buf1)
	buf2 := make([]byte, mod.SizeOfImage)
	h.ReadVA(mod.Base, buf2)
	if !bytes.Equal(buf1, buf2) {
		t.Error("repeated introspection changed memory")
	}
}

func TestConcurrentReads(t *testing.T) {
	g := testGuest(t)
	mod := g.Module("alpha.sys")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			h := open(t, g)
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < 50; j++ {
				off := uint32(rng.Intn(int(mod.SizeOfImage) - 64))
				if err := h.ReadVA(mod.Base+off, make([]byte, 64)); err != nil {
					t.Errorf("concurrent read: %v", err)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
}

func TestReadVAConsistentStableRange(t *testing.T) {
	g := testGuest(t)
	h := open(t, g)
	mod := g.Module("alpha.sys")
	want := make([]byte, mod.SizeOfImage)
	if err := g.AddressSpace().Read(mod.Base, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, mod.SizeOfImage)
	passes, err := h.ReadVAConsistent(mod.Base, got, 4)
	if err != nil {
		t.Fatal(err)
	}
	if passes != 2 {
		t.Errorf("stable range took %d passes, want 2", passes)
	}
	if !bytes.Equal(got, want) {
		t.Error("verified copy differs from guest view")
	}
	// The verify pass pays for its reads: twice the pages of a plain copy.
	if h.Stats().PagesRead != 2*uint64((mod.SizeOfImage+mm.PageSize-1)/mm.PageSize) {
		t.Errorf("PagesRead = %d, want double the page count", h.Stats().PagesRead)
	}
}

// TestReadVAConsistentRecoversTornWindow: with a fault plan tearing bulk
// reads for a bounded window, the verify loop keeps re-reading until two
// passes agree and returns the clean bytes.
func TestReadVAConsistentRecoversTornWindow(t *testing.T) {
	g := testGuest(t)
	mod := g.Module("alpha.sys")
	plan := faults.NewPlan(3)
	h := Open(g.Name(), plan.Reader(g.Name(), g.Phys()), g.CR3(), XPSP2Profile(guest.PsLoadedModuleListVA))
	want := make([]byte, mod.SizeOfImage)
	if err := g.AddressSpace().Read(mod.Base, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, mod.SizeOfImage)
	// Probe one clean pass to learn how many plan reads (walks + page
	// copies) a full copy of the module costs, then tear exactly the next
	// pass: the verify loop's first pass is corrupted, later ones clean.
	if err := h.ReadVA(mod.Base, got); err != nil {
		t.Fatal(err)
	}
	perPass := plan.Reads(g.Name())
	plan.TornWindow(g.Name(), perPass, 2*perPass)
	passes, err := h.ReadVAConsistent(mod.Base, got, 5)
	if err != nil {
		t.Fatal(err)
	}
	if passes < 3 {
		t.Errorf("torn first pass verified in %d passes, want >= 3", passes)
	}
	if !bytes.Equal(got, want) {
		t.Error("recovered copy still corrupt")
	}
}

// TestReadVAConsistentExhaustsAsTornRead: a window torn for longer than the
// pass budget surfaces as ErrTornRead, classified transient.
func TestReadVAConsistentExhaustsAsTornRead(t *testing.T) {
	g := testGuest(t)
	mod := g.Module("alpha.sys")
	plan := faults.NewPlan(3)
	plan.TornWindow(g.Name(), 0, 1<<40)
	h := Open(g.Name(), plan.Reader(g.Name(), g.Phys()), g.CR3(), XPSP2Profile(guest.PsLoadedModuleListVA))
	_, err := h.ReadVAConsistent(mod.Base, make([]byte, mod.SizeOfImage), 3)
	if !errors.Is(err, ErrTornRead) {
		t.Fatalf("err = %v, want ErrTornRead", err)
	}
	if !faults.IsTransient(err) {
		t.Error("torn read not classified transient")
	}
}

// TestWrongProfileFailsCleanly models operator error: introspecting with a
// profile whose PsLoadedModuleList address is wrong must produce errors or
// garbage-free failures, never a panic.
func TestWrongProfileFailsCleanly(t *testing.T) {
	g := testGuest(t)
	wrong := Profile{OSName: "WinXPSP3x86", Symbols: map[string]uint32{
		"PsLoadedModuleList": 0x80400000, // unmapped in this guest
	}}
	h := Open(g.Name(), g.Phys(), g.CR3(), wrong)
	va, err := h.SymbolVA("PsLoadedModuleList")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ReadVA(va, make([]byte, 8)); err == nil {
		t.Error("read through wrong profile succeeded")
	}
}

// TestWrongCR3FailsCleanly models introspecting with a stale CR3 (the vCPU
// moved to another process): translations fail, no panic.
func TestWrongCR3FailsCleanly(t *testing.T) {
	g := testGuest(t)
	h := Open(g.Name(), g.Phys(), 0x3000, XPSP2Profile(guest.PsLoadedModuleListVA))
	if err := h.ReadVA(guest.PsLoadedModuleListVA, make([]byte, 8)); err == nil {
		t.Error("read through bogus CR3 succeeded")
	}
}
