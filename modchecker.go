// Package modchecker is a from-scratch reproduction of "ModChecker: Kernel
// Module Integrity Checking in the Cloud Environment" (Ahmed, Zoranic,
// Javaid, Richard — ICPP 2012): an integrity checker that verifies
// in-memory kernel modules *without a database of known-good hashes* by
// cross-comparing the same module across a pool of identical VMs via
// virtual machine introspection.
//
// Because the original system requires a Xen host with Windows XP guests,
// this package ships its own simulated cloud: a hypervisor with
// credit-scheduler contention, guests with real page tables and an
// authentic PsLoadedModuleList, PE32 kernel modules with relocations, a
// libVMI-like introspection layer, and the rootkit techniques the paper
// uses for evaluation. See DESIGN.md for the substitution map.
//
// Typical use:
//
//	cloud, _ := modchecker.NewCloud(modchecker.CloudConfig{VMs: 15})
//	checker := cloud.NewChecker()
//	report, _ := checker.CheckModule("hal.dll", "Dom1")
//	fmt.Println(report.Verdict)
package modchecker

import (
	"fmt"
	"time"

	"modchecker/internal/cas"
	"modchecker/internal/core"
	"modchecker/internal/faults"
	"modchecker/internal/guest"
	"modchecker/internal/hypervisor"
	"modchecker/internal/metrics"
	"modchecker/internal/mm"
	"modchecker/internal/trace"
	"modchecker/internal/vmi"
)

// Re-exported result and configuration types; the full definitions live in
// internal/core.
type (
	// ModuleReport is the outcome of checking one module on one VM.
	ModuleReport = core.ModuleReport
	// PoolReport is the outcome of sweeping one module across all VMs.
	PoolReport = core.PoolReport
	// ModuleInfo describes one loaded-module-list entry.
	ModuleInfo = core.ModuleInfo
	// Verdict is the majority-vote conclusion.
	Verdict = core.Verdict
	// PhaseTiming is the Searcher/Parser/Checker time breakdown.
	PhaseTiming = core.PhaseTiming
	// ClusterReport is the version-aware pool analysis.
	ClusterReport = core.ClusterReport
	// PoolSweep is a sweep-scoped session: one module-table snapshot per VM,
	// reused for every module checked through it.
	PoolSweep = core.PoolSweep
	// RetryPolicy bounds the Searcher's response to transient faults.
	RetryPolicy = core.RetryPolicy
	// QuorumPolicy sets the minimum healthy comparisons for a verdict.
	QuorumPolicy = core.QuorumPolicy
	// FaultPlan is a deterministic, seeded fault-injection schedule.
	FaultPlan = faults.Plan
	// FaultClass classifies a failure as transient or permanent.
	FaultClass = faults.Class
	// FaultEvent is a scheduled domain-lifecycle action (pause/resume/destroy).
	FaultEvent = faults.Event
	// FaultOp identifies a control-plane lifecycle operation a fault plan
	// can schedule failures, hangs, or latency against.
	FaultOp = faults.Op
	// StageTiming is the per-stage (fetch/digest/compare) elapsed breakdown.
	StageTiming = core.StageTiming
	// Tracer records deterministic sim-clock trace events; see
	// internal/trace and docs/observability.md.
	Tracer = trace.Tracer
	// MetricsRegistry is the cloud-wide counter/gauge/histogram registry.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a deterministically ordered metrics export.
	MetricsSnapshot = metrics.Snapshot
)

// Verdict values.
const (
	VerdictClean        = core.VerdictClean
	VerdictAltered      = core.VerdictAltered
	VerdictInconclusive = core.VerdictInconclusive
	VerdictError        = core.VerdictError
)

// Fault classes.
const (
	FaultNone      = faults.ClassNone
	FaultTransient = faults.ClassTransient
	FaultPermanent = faults.ClassPermanent
)

// Control-plane operations a fault plan can target.
const (
	OpCreate   = faults.OpCreate
	OpClone    = faults.OpClone
	OpSnapshot = faults.OpSnapshot
	OpRevert   = faults.OpRevert
	OpDestroy  = faults.OpDestroy
	OpPause    = faults.OpPause
	OpUnpause  = faults.OpUnpause
)

// ErrVMBudget marks per-VM work skipped because the VM exhausted its sweep
// time budget; see Scanner.SetBudget.
var ErrVMBudget = core.ErrVMBudget

// NewFaultPlan creates an empty deterministic fault plan. Schedule faults on
// it, then install it on a Cloud with InstallFaultPlan.
func NewFaultPlan(seed int64) *FaultPlan { return faults.NewPlan(seed) }

// DefaultRetryPolicy returns the recommended retry configuration: a few
// attempts with simulated-clock backoff and verified reads.
func DefaultRetryPolicy() RetryPolicy { return core.DefaultRetryPolicy() }

// CloudConfig describes the simulated testbed. The zero value of each field
// defaults to the paper's setup: 15 Windows XP SP2 clones on an 8-thread
// host, 64 MiB guests.
type CloudConfig struct {
	VMs           int
	Cores         int
	GuestMemBytes uint64
	// Seed makes the whole cloud deterministic; distinct seeds give
	// different module load addresses in every guest.
	Seed int64
	// Templates switches cloning to the copy-on-write fleet path: Templates
	// guests boot fully (each with its own derived seed), and the remaining
	// VMs-Templates guests are forked from them round-robin, sharing every
	// untouched frame with their template. Zero keeps the paper's behavior
	// of booting each clone independently. Fleet-scale configurations
	// (thousands of VMs) want a small Templates so pool memory stays
	// O(Templates·guest), not O(VMs·guest).
	Templates int
	// Disk overrides the golden disk image set; nil builds the standard
	// catalog (hal.dll, http.sys, dummy.sys, ...).
	Disk map[string][]byte
	// NoTranslationCache disables the per-handle software TLB on every
	// introspection handle this cloud opens: each translation pays a full
	// external page-table walk, the paper-faithful behavior. Used as the
	// benchmark baseline.
	NoTranslationCache bool
}

// Cloud is a running testbed: a hypervisor with a privileged view plus a
// pool of identical guests, with introspection wired to the contention
// model.
type Cloud struct {
	hv      *hypervisor.Hypervisor
	domains []*hypervisor.Domain
	profile vmi.Profile
	plan    *faults.Plan
	stats   *vmi.SharedStats
	reg     *metrics.Registry
	tracer  *trace.Tracer
	noTLB   bool
}

// NewCloud builds and boots the testbed.
func NewCloud(cfg CloudConfig) (*Cloud, error) {
	if cfg.VMs <= 0 {
		cfg.VMs = 15
	}
	if cfg.GuestMemBytes == 0 {
		cfg.GuestMemBytes = 64 << 20
	}
	disk := cfg.Disk
	if disk == nil {
		var err error
		disk, err = guest.BuildStandardDisk()
		if err != nil {
			return nil, fmt.Errorf("modchecker: building golden disk: %w", err)
		}
	}
	hv := hypervisor.New(cfg.Cores)
	var domains []*hypervisor.Domain
	var err error
	if cfg.Templates > 0 {
		domains, err = hv.CloneFleet("Dom", cfg.VMs, cfg.Templates, disk, cfg.GuestMemBytes, cfg.Seed)
	} else {
		domains, err = hv.CloneDomains("Dom", cfg.VMs, disk, cfg.GuestMemBytes, cfg.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("modchecker: cloning domains: %w", err)
	}
	c := &Cloud{
		hv:      hv,
		domains: domains,
		profile: vmi.XPSP2Profile(guest.PsLoadedModuleListVA),
		stats:   &vmi.SharedStats{},
		reg:     &metrics.Registry{},
		noTLB:   cfg.NoTranslationCache,
	}
	c.stats.Bind(c.reg)
	c.hv.Bind(c.reg)
	return c, nil
}

// Metrics returns the cloud-wide metrics registry. Every layer publishes
// into it: VMI work counters (vmi/*), hypervisor charge accounting (hv/*),
// and scanner sweep counters (scanner/*). Snapshot it for a deterministic,
// name-sorted export.
func (c *Cloud) Metrics() *MetricsRegistry { return c.reg }

// EnableTrace switches on deterministic sim-clock tracing for this cloud
// (capacity 0 means the default ring size) and returns the tracer. Call it
// before creating checkers or scanners and before starting checks — those
// capture the tracer at creation time. Export with Tracer().WriteChromeJSON.
func (c *Cloud) EnableTrace(capacity int) *Tracer {
	c.tracer = trace.New(capacity)
	c.hv.SetTracer(c.tracer)
	return c.tracer
}

// Tracer returns the cloud's tracer, or nil when tracing is not enabled.
func (c *Cloud) Tracer() *Tracer { return c.tracer }

// IntrospectionStats returns the aggregate VMI work counters of every handle
// this cloud has opened — PTWalks, TLB hits, pages read — the counters the
// benchmark harness reports per sweep.
func (c *Cloud) IntrospectionStats() vmi.Stats { return c.stats.Snapshot() }

// Hypervisor exposes the underlying hypervisor (clock, scheduler,
// snapshots).
func (c *Cloud) Hypervisor() *hypervisor.Hypervisor { return c.hv }

// VMNames returns the guest VM names in creation order (Dom1..DomN).
func (c *Cloud) VMNames() []string {
	out := make([]string, len(c.domains))
	for i, d := range c.domains {
		out[i] = d.Name
	}
	return out
}

// Domain returns the named domain, or nil.
func (c *Cloud) Domain(name string) *hypervisor.Domain { return c.hv.Domain(name) }

// Guest returns the named VM's guest, or nil. Guest access models code
// running *inside* the VM (infections, the resource monitor); ModChecker
// itself only ever uses introspection targets.
func (c *Cloud) Guest(name string) *guest.Guest {
	d := c.hv.Domain(name)
	if d == nil {
		return nil
	}
	return d.Guest()
}

// Guests returns all guests in creation order.
func (c *Cloud) Guests() []*guest.Guest {
	out := make([]*guest.Guest, len(c.domains))
	for i, d := range c.domains {
		out[i] = d.Guest()
	}
	return out
}

// InstallFaultPlan routes every subsequently opened introspection target
// through the plan's per-VM fault schedules, and wires the plan's lifecycle
// events to the hypervisor: scheduled pauses/resumes hit the scheduler, a
// scheduled destroy tears the domain down mid-check. Installing nil removes
// the plan. Targets opened before the call keep their old reader chain.
func (c *Cloud) InstallFaultPlan(p *FaultPlan) {
	c.plan = p
	if p == nil {
		c.hv.SetControlGate(nil)
		return
	}
	// Control-plane schedules gate every hypervisor lifecycle operation
	// (create/clone/snapshot/revert/destroy/pause/unpause): injected latency
	// is charged to the simulated clock, injected failures surface as
	// classified errors to the caller. Observability mirrors OnInject.
	c.hv.SetControlGate(p.ControlOp)
	p.OnControl(func(vm string, op faults.Op, idx uint64, kind string) {
		c.tracer.Defer("control fault", "fault",
			trace.Arg{Key: "vm", Val: vm},
			trace.Arg{Key: "op", Val: op.String()},
			trace.Arg{Key: "kind", Val: kind},
			trace.Arg{Key: "invocation", Val: fmt.Sprintf("%d", idx)})
		c.reg.Counter("faults/control_injected").Inc()
	})
	// Injections land inside racing pipeline workers, so they go to the
	// tracer's deferred fault track (sequenced at the next flush point) and
	// to a commutative counter — both interleaving-independent.
	p.OnInject(func(vm string, idx uint64, kind string) {
		c.tracer.Defer("fault inject", "fault",
			trace.Arg{Key: "vm", Val: vm},
			trace.Arg{Key: "kind", Val: kind},
			trace.Arg{Key: "read", Val: fmt.Sprintf("%d", idx)})
		c.reg.Counter("faults/injected").Inc()
	})
	p.OnEvent(func(vm string, ev faults.Event) {
		// Every lifecycle event invalidates the domain's cached VMI
		// translations: the guest may have been perturbed while the handle
		// was not looking (paused, rescheduled, torn down).
		switch ev {
		case faults.EventPause:
			if d := c.hv.Domain(vm); d != nil {
				//modlint:ignore releasetrack the plan's scheduled EventResume unpauses the domain
				if err := d.Pause(); err == nil {
					d.InvalidateMappings()
				}
			}
		case faults.EventResume:
			if d := c.hv.Domain(vm); d != nil {
				if err := d.Unpause(); err == nil {
					d.InvalidateMappings()
				}
			}
		case faults.EventDestroy:
			if d := c.hv.Domain(vm); d != nil {
				d.InvalidateMappings()
			}
			// Best effort: a double destroy is a no-op.
			_ = c.hv.DestroyDomain(vm)
		}
	})
}

// FaultPlan returns the installed fault plan, or nil.
func (c *Cloud) FaultPlan() *FaultPlan { return c.plan }

// reader builds a domain's physical-read chain: the lifecycle guard (reads
// fail permanently once the domain is destroyed) wrapped by the installed
// fault plan, if any.
func (c *Cloud) reader(d *hypervisor.Domain) mm.PhysReader {
	var mem mm.PhysReader = d.PhysReader()
	if c.plan != nil {
		mem = c.plan.Reader(d.Name, mem)
	}
	return mem
}

// handleOptions are the options every cloud-opened handle shares: the
// pool-wide stats sink, the domain's mapping-epoch source (snapshot reverts
// and fault-plan lifecycle events flush the translation cache), and the
// cloud-level TLB switch.
func (c *Cloud) handleOptions(d *hypervisor.Domain) []vmi.Option {
	opts := []vmi.Option{
		vmi.WithSharedStats(c.stats),
		vmi.WithInvalidation(d.MappingEpoch),
	}
	if c.noTLB {
		opts = append(opts, vmi.WithoutTranslationCache())
	}
	return opts
}

// Target opens an introspection target on the named VM: physical memory +
// CR3 + the shared XP profile. Work done through a Target is accounted on
// the hypervisor clock by the Checker (which charges aggregate phase
// costs); open a handle with OpenVMI for raw introspection that should
// charge per operation.
func (c *Cloud) Target(name string) (core.Target, error) {
	d := c.hv.Domain(name)
	if d == nil {
		return core.Target{}, fmt.Errorf("modchecker: no VM %q", name)
	}
	g := d.Guest()
	h := vmi.Open(name, c.reader(d), g.CR3(), c.profile, c.handleOptions(d)...)
	t := core.Target{Name: name, Handle: h}
	if c.plan == nil {
		// Identity lets WithIdentityDedup treat copy-on-write forks that
		// still share their template's frozen image as one VM. A fault plan
		// breaks the "same frames, same reads" equivalence (faults are
		// per-VM), so targets opened under a plan advertise no identity.
		// The guest's physical memory is read live on every sample — a
		// snapshot Restore swaps the backing object, and an identity pinned
		// to the pre-revert memory would keep reporting the old frozen
		// layer's stable ID while the actual image diverges. ContentID
		// (a fingerprint of the frozen frames, not an allocation counter)
		// keeps tokens stable across process runs, so a persistent digest
		// store reopened against an identically built cloud still hits.
		t.Identity = func() (uint64, bool) {
			if d.Destroyed() {
				return 0, false
			}
			return g.Phys().ContentID()
		}
		// Epoch folds the domain's mapping epoch into content-cache tokens:
		// lifecycle events that invalidate mappings (pause/resume, revert,
		// fault-plan installation hooks) bump it, retiring stale entries.
		t.Epoch = d.MappingEpoch
	}
	return t, nil
}

// OpenVMI opens a raw introspection handle on the named VM with every
// primitive charged to the hypervisor's contention-aware clock. Used by
// harnesses (e.g. the Figure 9 guest-impact experiment) that introspect
// outside the Checker pipeline.
func (c *Cloud) OpenVMI(name string) (*vmi.Handle, error) {
	d := c.hv.Domain(name)
	if d == nil {
		return nil, fmt.Errorf("modchecker: no VM %q", name)
	}
	g := d.Guest()
	opts := append(c.handleOptions(d),
		vmi.WithCharge(func(d time.Duration) { c.hv.ChargeDom0(d) }))
	return vmi.Open(name, c.reader(d), g.CR3(), c.profile, opts...), nil
}

// Targets opens introspection targets for the named VMs (all VMs when none
// are named).
func (c *Cloud) Targets(names ...string) ([]core.Target, error) {
	if len(names) == 0 {
		names = c.VMNames()
	}
	out := make([]core.Target, 0, len(names))
	for _, n := range names {
		t, err := c.Target(n)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Checker runs ModChecker against this cloud.
type Checker struct {
	cloud *Cloud
	inner *core.Checker
}

// CheckerOption configures a Checker.
type CheckerOption func(*core.Config)

// WithParallel fetches VM memory concurrently — the enhancement the paper's
// Section V-C.1 proposes; the measured configuration is sequential.
func WithParallel() CheckerOption {
	return func(c *core.Config) { c.Parallel = true }
}

// WithWorkers bounds the goroutines of the parallel fetch and compare
// stages (the default is 8, the paper's 8-thread host).
func WithWorkers(n int) CheckerOption {
	return func(c *core.Config) { c.Workers = n }
}

// WithFullPairwise forces pool checks onto the legacy O(n²) comparison path
// instead of digest pre-clustering. Results are identical; this exists for
// benchmarking the two paths against each other and as a paper-faithful
// reference.
func WithFullPairwise() CheckerOption {
	return func(c *core.Config) { c.FullPairwise = true }
}

// WithMappedCopy switches Module-Searcher from the paper's page-wise copy
// to a bulk mapping (ablation A3).
func WithMappedCopy() CheckerOption {
	return func(c *core.Config) { c.Strategy = core.CopyMapped }
}

// WithRelocNormalizer switches RVA adjustment from the paper's Algorithm 2
// diff scan to the module's own relocation table (ablation A2).
func WithRelocNormalizer() CheckerOption {
	return func(c *core.Config) { c.Normalizer = core.NormalizeRelocTable }
}

// WithRetry makes the Searcher retry transient faults with backoff charged
// to the simulated clock (and, if the policy asks, verify reads against
// concurrent guest mutation).
func WithRetry(p RetryPolicy) CheckerOption {
	return func(c *core.Config) { c.Retry = p }
}

// WithQuorum degrades verdicts to Inconclusive when fewer than
// q.MinPeers healthy peer comparisons are available.
func WithQuorum(q QuorumPolicy) CheckerOption {
	return func(c *core.Config) { c.Quorum = q }
}

// WithShardSize makes pool sweeps process VMs in shards of at most n,
// bounding resident module copies to O(n + clusters) instead of O(pool).
// Because every shard digests against the same pool-wide reference, the
// composed result — reports, traces, simulated costs — is byte-identical to
// the flat clustered path; n only caps memory and intra-shard parallelism.
func WithShardSize(n int) CheckerOption {
	return func(c *core.Config) { c.ShardSize = n }
}

// WithLeanReports derives pool verdicts from digest-cluster structure in
// O(clusters² + pool) and materializes ModuleReports only for non-clean VMs.
// Verdicts, alerts, counts, and simulated costs are unchanged; the per-pair
// detail lists (Pairs, MismatchedVMs) that grow O(pool) per VM are omitted.
// Required reading for 100k-VM sweeps; pointless below a few hundred.
func WithLeanReports() CheckerOption {
	return func(c *core.Config) { c.LeanReports = true }
}

// WithIdentityDedup introspects one leader per identity group — copy-on-write
// forks still sharing their template's frozen image report the same
// Target.Identity — and shares the leader's verdict with the group. This
// deliberately changes the simulated cost model (the deduped VMs' fetches
// cost nothing), so it is an explicit opt-in, never byte-identical to the
// flat path, and inert under a fault plan (no identities are advertised).
func WithIdentityDedup() CheckerOption {
	return func(c *core.Config) { c.DedupIdentical = true }
}

// DigestStore is the content-addressed digest store behind WithDigestCache:
// digest-cluster keys and representative-comparison outcomes, addressed by
// content tokens (copy-on-write base-layer identity + mapping epoch) rather
// than by VM. Token equality proves the guest image is bit-identical to when
// an entry was written, so replaying a hit is sound by construction; a guest
// write, snapshot revert, or fault-plan lifecycle event changes the token
// and the old entries simply stop being addressable. Clones sharing a frozen
// template image share entries, so one store deduplicates digest work across
// sweeps, across checkers, and across pools.
type DigestStore = cas.Store

// NewDigestStore creates an in-memory digest store. maxEntries bounds the
// entry count (FIFO eviction); zero selects the default bound.
func NewDigestStore(maxEntries int) *DigestStore { return cas.NewStore(maxEntries) }

// OpenDigestStore opens (or creates) a digest store persisted at path: a
// single-file, crash-safe append-only log replayed into the in-memory index
// on open. fingerprint must identify the content universe the store's
// tokens come from — use CloudConfig.CacheFingerprint for stores shared
// across runs of the same deterministic cloud; a file written under a
// different fingerprint is reset rather than trusted. Close the store to
// flush the log.
func OpenDigestStore(path, fingerprint string, maxEntries int) (*DigestStore, error) {
	return cas.Open(path, fingerprint, maxEntries)
}

// CacheFingerprint derives the persistent digest store fingerprint for this
// configuration. Two runs with equal fingerprints build bit-identical clouds
// (the simulation is seed-deterministic), so their content tokens name the
// same images and a store written by one run is valid in the other.
func (cfg CloudConfig) CacheFingerprint() string {
	vms := cfg.VMs
	if vms <= 0 {
		vms = 15
	}
	mem := cfg.GuestMemBytes
	if mem == 0 {
		mem = 64 << 20
	}
	return fmt.Sprintf("modcas/v1 vms=%d templates=%d seed=%d mem=%d", vms, cfg.Templates, cfg.Seed, mem)
}

// WithDigestCache routes pool sweeps through a cross-sweep digest store: a
// VM whose content token matches a stored entry replays its digest cluster
// key for the cost of one index probe instead of a fetch+parse+digest, and
// cluster pairs whose comparison outcome is cached skip the comparison. A
// steady-state sweep over an unchanged pool fetches nothing; an infected VM
// costs O(changed modules) fetches. A cold store changes nothing — reports
// and simulated costs are byte-identical to the uncached sweep (the
// differential tests pin this); warm sweeps report less simulated time.
// Ignored by the per-call CheckModule/CheckPool forms and under
// WithFullPairwise, and inert under a fault plan (faulted targets advertise
// no identity, so faulted reads never populate the store).
func WithDigestCache(s *DigestStore) CheckerOption {
	return func(c *core.Config) { c.DigestCache = s }
}

// NewChecker creates a checker wired to this cloud's cost model and — when
// EnableTrace was called first — its tracer.
func (c *Cloud) NewChecker(opts ...CheckerOption) *Checker {
	cfg := core.Config{
		Charge: func(d time.Duration) time.Duration { return c.hv.ChargeDom0(d) },
		Tracer: c.tracer,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.DigestCache != nil {
		// Content-cache tokens only exist for memory sitting unmodified on a
		// frozen copy-on-write layer. Fleet clones are born that way;
		// independently booted guests are sealed here once, so enabling the
		// cache gives every live domain a stable identity. Sealing changes
		// nothing observable — reads see the same bytes at the same cost —
		// and the first later guest write lands in a fresh overlay, which is
		// exactly what retires the VM's token.
		for _, d := range c.domains {
			if !d.Destroyed() {
				d.Guest().Phys().Seal()
			}
		}
	}
	return &Checker{cloud: c, inner: core.NewChecker(cfg)}
}

// ListModules walks the named VM's loaded-module list via introspection and
// charges the walk to the hypervisor's Dom0 clock. Targets do not charge per
// primitive (see Cloud.Target), so the checker must account the cost itself;
// the partial cost of a failed walk is still charged, matching the sweep's
// list stage.
//
//modsafe:charged
func (c *Checker) ListModules(vm string) ([]ModuleInfo, error) {
	t, err := c.cloud.Target(vm)
	if err != nil {
		return nil, err
	}
	mods, cost, err := core.NewSearcher(t.Handle, core.CopyPageWise).ListModulesCosted()
	c.cloud.Hypervisor().ChargeDom0(cost)
	return mods, err
}

// CheckModule verifies module on targetVM against the given peers (all
// other VMs when none are named), applying the paper's majority vote.
func (c *Checker) CheckModule(module, targetVM string, peerVMs ...string) (*ModuleReport, error) {
	target, err := c.cloud.Target(targetVM)
	if err != nil {
		return nil, err
	}
	if len(peerVMs) == 0 {
		for _, n := range c.cloud.VMNames() {
			if n != targetVM {
				peerVMs = append(peerVMs, n)
			}
		}
	}
	peers, err := c.cloud.Targets(peerVMs...)
	if err != nil {
		return nil, err
	}
	return c.inner.CheckModule(module, target, peers)
}

// CheckPool sweeps module across the named VMs (all when none named),
// flagging the copies a majority of peers dispute.
func (c *Checker) CheckPool(module string, vms ...string) (*PoolReport, error) {
	targets, err := c.cloud.Targets(vms...)
	if err != nil {
		return nil, err
	}
	return c.inner.CheckPool(module, targets)
}

// NewPoolSweep opens a sweep session over the named VMs (all when none
// named): each VM's loaded-module list is walked once and the snapshot plus
// the open introspection handles are reused for every module checked through
// the session — the Scanner's per-sweep fast path. The caller owns the
// session and must Close it once the sweep is done.
//
//modsafe:acquires sweep-session
func (c *Checker) NewPoolSweep(vms ...string) (*PoolSweep, error) {
	targets, err := c.cloud.Targets(vms...)
	if err != nil {
		return nil, err
	}
	return c.inner.NewPoolSweep(targets)
}

// ClusterPool groups the named VMs' copies of module into equivalence
// clusters — the version-aware generalization of the majority vote that
// stays useful mid rolling-update (see core.ClusterPool).
func (c *Checker) ClusterPool(module string, vms ...string) (*ClusterReport, error) {
	targets, err := c.cloud.Targets(vms...)
	if err != nil {
		return nil, err
	}
	return c.inner.ClusterPool(module, targets)
}
