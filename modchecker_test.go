package modchecker

import (
	"strings"
	"testing"
	"time"

	"modchecker/internal/guest"
	"modchecker/internal/pe"
	"modchecker/internal/stress"
)

// guestBuildV2 builds the "updated" ndis.sys used by cluster tests.
func guestBuildV2() ([]byte, error) {
	return guest.BuildImage(guest.ModuleSpec{
		Name: "ndis-v2", TextSize: 128 << 10, DataSize: 32 << 10, RdataSize: 8 << 10,
		PreferredBase: 0x10000,
		Imports:       []pe.Import{{DLL: "ntoskrnl.exe", Functions: []string{"ZwClose"}}},
	})
}

func testCloud(t testing.TB, vms int, seed int64) *Cloud {
	t.Helper()
	cloud, err := NewCloud(CloudConfig{VMs: vms, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return cloud
}

func TestCloudDefaults(t *testing.T) {
	cloud, err := NewCloud(CloudConfig{VMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cloud.Hypervisor().Cores() != 8 {
		t.Errorf("default cores = %d", cloud.Hypervisor().Cores())
	}
	names := cloud.VMNames()
	if len(names) != 2 || names[0] != "Dom1" || names[1] != "Dom2" {
		t.Errorf("VMNames = %v", names)
	}
}

func TestCloudPaperScale(t *testing.T) {
	// The paper's full configuration: 15 XP clones.
	cloud := testCloud(t, 15, 42)
	if len(cloud.VMNames()) != 15 {
		t.Fatalf("%d VMs", len(cloud.VMNames()))
	}
	// All VMs expose the full standard module set via introspection.
	checker := cloud.NewChecker()
	mods, err := checker.ListModules("Dom15")
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 7 {
		t.Errorf("Dom15 exposes %d modules", len(mods))
	}
}

func TestCloudDeterminism(t *testing.T) {
	a := testCloud(t, 3, 9)
	b := testCloud(t, 3, 9)
	for _, name := range a.VMNames() {
		ma := a.Guest(name).Module("hal.dll")
		mb := b.Guest(name).Module("hal.dll")
		if ma.Base != mb.Base {
			t.Errorf("%s: bases differ across identically-seeded clouds", name)
		}
	}
}

func TestGuestAccessors(t *testing.T) {
	cloud := testCloud(t, 2, 1)
	if cloud.Guest("Dom1") == nil || cloud.Domain("Dom1") == nil {
		t.Error("accessors failed")
	}
	if cloud.Guest("DomX") != nil || cloud.Domain("DomX") != nil {
		t.Error("bogus VM found")
	}
	if len(cloud.Guests()) != 2 {
		t.Error("Guests() wrong length")
	}
}

func TestTargetErrors(t *testing.T) {
	cloud := testCloud(t, 2, 1)
	if _, err := cloud.Target("DomX"); err == nil {
		t.Error("target on bogus VM succeeded")
	}
	if _, err := cloud.Targets("Dom1", "DomX"); err == nil {
		t.Error("targets with bogus VM succeeded")
	}
	if _, err := cloud.OpenVMI("DomX"); err == nil {
		t.Error("OpenVMI on bogus VM succeeded")
	}
}

func TestCheckModuleDefaultsToAllPeers(t *testing.T) {
	cloud := testCloud(t, 4, 2)
	rep, err := cloud.NewChecker().CheckModule("http.sys", "Dom2")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Comparisons != 3 {
		t.Errorf("comparisons = %d, want 3", rep.Comparisons)
	}
	for _, p := range rep.Pairs {
		if p.PeerVM == "Dom2" {
			t.Error("target compared against itself")
		}
	}
}

func TestCheckAllCatalogModules(t *testing.T) {
	cloud := testCloud(t, 3, 3)
	checker := cloud.NewChecker()
	mods, err := checker.ListModules("Dom1")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mods {
		rep, err := checker.CheckModule(m.Name, "Dom1")
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if rep.Verdict != VerdictClean {
			t.Errorf("%s: %v (%v)", m.Name, rep.Verdict, rep.MismatchedComponents())
		}
	}
}

func TestInfectHelpers(t *testing.T) {
	cases := []struct {
		name   string
		module string
		apply  func(c *Cloud) error
		want   []string // substrings of expected mismatched components
	}{
		{"opcode", "hal.dll", func(c *Cloud) error { return InfectOpcode(c, "Dom2", "hal.dll") }, []string{".text"}},
		{"inline-live", "ndis.sys", func(c *Cloud) error { return InfectInlineHookLive(c, "Dom2", "ndis.sys") }, []string{".text"}},
		{"stub", "ntfs.sys", func(c *Cloud) error { return InfectStubPatch(c, "Dom2", "ntfs.sys", "DOS", "CHK") }, []string{"IMAGE_DOS_HEADER"}},
		{"dllhook", "http.sys", func(c *Cloud) error { return InfectDLLHook(c, "Dom2", "http.sys", "evil.dll", "spy") }, []string{"IMAGE_NT_HEADER", "IMAGE_OPTIONAL_HEADER", ".text"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cloud := testCloud(t, 4, 11)
			if err := tc.apply(cloud); err != nil {
				t.Fatalf("infect: %v", err)
			}
			rep, err := cloud.NewChecker().CheckModule(tc.module, "Dom2")
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict != VerdictAltered {
				t.Fatalf("verdict = %v", rep.Verdict)
			}
			got := strings.Join(rep.MismatchedComponents(), ",")
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Errorf("mismatched %q missing %q", got, w)
				}
			}
		})
	}
}

func TestInfectErrors(t *testing.T) {
	cloud := testCloud(t, 2, 1)
	if err := InfectPreset(cloud, "DomX", "opcode-patch"); err == nil {
		t.Error("infecting bogus VM succeeded")
	}
	if err := InfectPreset(cloud, "Dom1", "bogus"); err == nil {
		t.Error("bogus preset succeeded")
	}
	if err := InfectOpcode(cloud, "DomX", "hal.dll"); err == nil {
		t.Error("opcode on bogus VM succeeded")
	}
	if err := InfectOpcode(cloud, "Dom1", "http.sys"); err == nil {
		t.Error("opcode on marker-less module succeeded")
	}
	if err := InfectDLLHook(cloud, "DomX", "http.sys", "a.dll", "f"); err == nil {
		t.Error("dllhook on bogus VM succeeded")
	}
	if err := InfectInlineHookLive(cloud, "DomX", "hal.dll"); err == nil {
		t.Error("live hook on bogus VM succeeded")
	}
	if err := InfectStubPatch(cloud, "DomX", "hal.dll", "DOS", "CHK"); err == nil {
		t.Error("stub patch on bogus VM succeeded")
	}
}

func TestInfectionPresetsListing(t *testing.T) {
	ps := InfectionPresets()
	if len(ps) != 5 {
		t.Fatalf("%d presets", len(ps))
	}
	for _, p := range ps {
		if p.Name == "" || p.Module == "" || p.Description == "" {
			t.Errorf("incomplete preset %+v", p)
		}
	}
}

func TestAllPresetsDetected(t *testing.T) {
	for _, p := range InfectionPresets() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cloud := testCloud(t, 5, 21)
			if err := InfectPreset(cloud, "Dom4", p.Name); err != nil {
				t.Fatalf("infect: %v", err)
			}
			pool, err := cloud.NewChecker().CheckPool(p.Module)
			if err != nil {
				t.Fatal(err)
			}
			if len(pool.Flagged) != 1 || pool.Flagged[0] != "Dom4" {
				t.Errorf("flagged = %v", pool.Flagged)
			}
		})
	}
}

func TestSnapshotRevertWorkflow(t *testing.T) {
	cloud := testCloud(t, 3, 31)
	dom := cloud.Domain("Dom2")
	if err := dom.TakeSnapshot("clean"); err != nil {
		t.Fatal(err)
	}
	if err := InfectPreset(cloud, "Dom2", "opcode-patch"); err != nil {
		t.Fatal(err)
	}
	checker := cloud.NewChecker()
	pool, err := checker.CheckPool("hal.dll")
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Flagged) != 1 {
		t.Fatalf("flagged = %v", pool.Flagged)
	}
	if err := dom.Revert("clean"); err != nil {
		t.Fatal(err)
	}
	pool, err = checker.CheckPool("hal.dll")
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Flagged) != 0 {
		t.Errorf("still flagged after revert: %v", pool.Flagged)
	}
}

func TestCheckerOptionsCombined(t *testing.T) {
	cloud := testCloud(t, 4, 41)
	if err := InfectPreset(cloud, "Dom3", "opcode-patch"); err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]CheckerOption{
		{WithParallel()},
		{WithMappedCopy()},
		{WithRelocNormalizer()},
		{WithParallel(), WithMappedCopy(), WithRelocNormalizer()},
	} {
		pool, err := cloud.NewChecker(opts...).CheckPool("hal.dll")
		if err != nil {
			t.Fatal(err)
		}
		if len(pool.Flagged) != 1 || pool.Flagged[0] != "Dom3" {
			t.Errorf("opts %d: flagged = %v", len(opts), pool.Flagged)
		}
	}
}

func TestContentionStretchesTiming(t *testing.T) {
	cloud := testCloud(t, 15, 51)
	checker := cloud.NewChecker()
	idle, err := checker.CheckModule("http.sys", "Dom1")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range cloud.Guests() {
		stress.Apply(g, stress.HeavyLoad)
	}
	loaded, err := checker.CheckModule("http.sys", "Dom1")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Timing.Total() <= idle.Timing.Total() {
		t.Errorf("loaded timing %v not above idle %v", loaded.Timing.Total(), idle.Timing.Total())
	}
}

func TestOpenVMIChargesClock(t *testing.T) {
	cloud := testCloud(t, 2, 61)
	h, err := cloud.OpenVMI("Dom1")
	if err != nil {
		t.Fatal(err)
	}
	before := cloud.Hypervisor().Clock().Now()
	buf := make([]byte, 64<<10)
	base := cloud.Guest("Dom1").Module("http.sys").Base
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	if cloud.Hypervisor().Clock().Now() == before {
		t.Error("raw VMI reads did not advance the hypervisor clock")
	}
}

// TestListModulesChargesClock pins that a standalone LDR-list walk is
// accounted on the hypervisor clock. Targets carry no per-primitive charge
// hook, so ListModules must charge the walk's cost itself — an uncharged
// walk would make module discovery free in the simulation.
func TestListModulesChargesClock(t *testing.T) {
	cloud := testCloud(t, 2, 62)
	before := cloud.Hypervisor().Clock().Now()
	mods, err := cloud.NewChecker().ListModules("Dom1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) == 0 {
		t.Fatal("no modules listed")
	}
	if cloud.Hypervisor().Clock().Now() == before {
		t.Error("ListModules did not charge the LDR walk to the hypervisor clock")
	}
}

func TestCustomDisk(t *testing.T) {
	base := testCloud(t, 1, 1)
	disk := map[string][]byte{"hal.dll": base.Guest("Dom1").DiskImage("hal.dll")}
	cloud, err := NewCloud(CloudConfig{VMs: 2, Seed: 5, Disk: disk})
	if err != nil {
		t.Fatal(err)
	}
	mods, err := cloud.NewChecker().ListModules("Dom1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 1 || mods[0].Name != "hal.dll" {
		t.Errorf("modules = %v", mods)
	}
}

func TestVerdictReexports(t *testing.T) {
	if VerdictClean.String() != "CLEAN" || VerdictAltered.String() != "ALTERED" {
		t.Error("re-exported verdicts broken")
	}
	var pt PhaseTiming
	pt.Searcher = time.Millisecond
	if pt.Total() != time.Millisecond {
		t.Error("PhaseTiming re-export broken")
	}
}

// TestClusterPoolPublicAPI exercises the version-aware sweep through the
// facade: a fleet-wide rolling update of ndis.sys (half done) clusters
// into two groups with nothing flagged, while an infected VM shows up as
// a flagged singleton once a majority exists.
func TestClusterPoolPublicAPI(t *testing.T) {
	cloud := testCloud(t, 6, 101)
	// Roll the update onto half the fleet only.
	updated, err := guestBuildV2()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range cloud.VMNames()[:3] {
		g := cloud.Guest(name)
		if err := g.ReplaceDiskImage("ndis.sys", updated); err != nil {
			t.Fatal(err)
		}
		if err := g.UnloadModule("ndis.sys"); err != nil {
			t.Fatal(err)
		}
		if _, err := g.LoadModule("ndis.sys"); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := cloud.NewChecker().ClusterPool("ndis.sys")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clusters) != 2 || rep.MajorityCluster != -1 || len(rep.Flagged) != 0 {
		t.Errorf("rolling update report: %+v", rep)
	}

	// Now an infection on a fully-updated pool.
	cloud2 := testCloud(t, 5, 103)
	if err := InfectPreset(cloud2, "Dom4", "opcode-patch"); err != nil {
		t.Fatal(err)
	}
	rep2, err := cloud2.NewChecker().ClusterPool("hal.dll")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Flagged) != 1 || rep2.Flagged[0] != "Dom4" {
		t.Errorf("flagged = %v", rep2.Flagged)
	}
}
