package modchecker

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// counterValue pulls one counter out of a metrics snapshot (0 if absent).
func counterValue(s MetricsSnapshot, name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// healthFingerprint renders a report's health map deterministically.
func healthFingerprint(rep *SweepReport) string {
	vms := make([]string, 0, len(rep.Health))
	for vm := range rep.Health {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	var b strings.Builder
	for _, vm := range vms {
		fmt.Fprintf(&b, "%s=%v ", vm, rep.Health[vm])
	}
	return b.String()
}

// runTracedScenario drives the PR's observability acceptance scenario on a
// fresh cloud — 15 VMs, tracing on, a fault plan exercising transient,
// flaky, torn, and destroy injections, parallel pipelined sweeps with
// retries — and returns the Chrome trace export plus a fingerprint of
// everything determinism covers (findings, health, metrics, sim clock).
func runTracedScenario(t *testing.T) (traceJSON []byte, fingerprint string, snap MetricsSnapshot) {
	t.Helper()
	cloud := testCloud(t, 15, 42)
	tr := cloud.EnableTrace(0)
	plan := NewFaultPlan(7)
	plan.FailReads("Dom3", 0, 2)
	plan.FlakyReads("Dom5", 0.02)
	plan.TornWindow("Dom7", 5, 60)
	plan.DestroyAt("Dom9", 80)
	cloud.InstallFaultPlan(plan)

	sc := cloud.NewScanner(WithParallel(), WithRetry(DefaultRetryPolicy()))
	sc.SetModules([]string{"hal.dll", "ndis.sys", "tcpip.sys"})

	var b strings.Builder
	for sweep := 1; sweep <= 2; sweep++ {
		rep, err := sc.Sweep()
		if err != nil {
			t.Fatalf("sweep %d: %v", sweep, err)
		}
		b.WriteString(sweepFingerprint(rep))
		b.WriteString(healthFingerprint(rep))
		fmt.Fprintf(&b, "timing list=%v fetch=%v digest=%v compare=%v sim=%v\n",
			rep.Timing.List, rep.Timing.Fetch, rep.Timing.Digest, rep.Timing.Compare, rep.Simulated)
	}
	fmt.Fprintf(&b, "clock=%v\n", cloud.Hypervisor().Clock().Now())

	if tr.Dropped() != 0 {
		t.Errorf("trace ring dropped %d events at default capacity", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatalf("WriteChromeJSON: %v", err)
	}
	return buf.Bytes(), b.String(), cloud.Metrics().Snapshot()
}

// TestTraceExportByteIdentical is the PR's determinism invariant: two runs
// from one seed — parallel pipelined sweeps, racing fault injections, a
// mid-sweep destroy — produce byte-identical Chrome trace exports, identical
// findings/health, and an identical simulated clock.
func TestTraceExportByteIdentical(t *testing.T) {
	json1, fp1, snap1 := runTracedScenario(t)
	json2, fp2, snap2 := runTracedScenario(t)

	if fp1 != fp2 {
		t.Errorf("sweep findings diverge across identically seeded runs:\n--- run 1\n%s--- run 2\n%s", fp1, fp2)
	}
	if !bytes.Equal(json1, json2) {
		// Find the first divergent line for a readable failure.
		l1, l2 := strings.Split(string(json1), "\n"), strings.Split(string(json2), "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("trace exports diverge at line %d:\nrun 1: %s\nrun 2: %s", i+1, l1[i], l2[i])
			}
		}
		t.Fatalf("trace exports diverge in length: %d vs %d bytes", len(json1), len(json2))
	}

	// The fault counter is part of the deterministic surface too.
	if a, b := counterValue(snap1, "faults/injected"), counterValue(snap2, "faults/injected"); a != b || a == 0 {
		t.Errorf("faults/injected = %d vs %d, want equal and nonzero", a, b)
	}
}

// TestTraceExportContent checks the export actually carries every
// instrumented layer: pipeline stage envelopes and per-task spans, scanner
// sweep spans and health transitions, deferred fault injections, and
// hypervisor lifecycle events, plus the Perfetto metadata naming the lanes.
func TestTraceExportContent(t *testing.T) {
	json1, _, _ := runTracedScenario(t)
	s := string(json1)
	for _, want := range []string{
		`"displayTimeUnit": "ms"`,
		`"modchecker pipeline"`,
		`"cloud events"`,
		`"coordinator"`,
		`"fault plane"`,
		`"stage:list"`,
		`"stage:fetch"`,
		`"stage:digest"`,
		`"stage:compare"`,
		`"fetch Dom1"`,
		`"sweep 1"`,
		`"sweep 2"`,
		`"health Dom9"`,
		`"fault inject"`,
		`"domain destroy"`,
		`"s": "t"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("trace export missing %s", want)
		}
	}
}

// TestSweepTimingAndMetricsPopulated: a traced parallel sweep fills every
// SweepTiming stage and the cross-layer metric families the registry is
// supposed to absorb (vmi/*, hv/*, scanner/*).
func TestSweepTimingAndMetricsPopulated(t *testing.T) {
	cloud := testCloud(t, 4, 137)
	cloud.EnableTrace(0)
	sc := cloud.NewScanner(WithParallel())
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	tm := rep.Timing
	if tm.List <= 0 || tm.Fetch <= 0 || tm.Digest <= 0 || tm.Compare <= 0 {
		t.Errorf("stage timing not populated: %+v", tm)
	}
	if tm.Work.Searcher <= 0 || tm.Work.Parser <= 0 || tm.Work.Checker <= 0 {
		t.Errorf("component work not populated: %+v", tm.Work)
	}
	if rep.Simulated <= 0 {
		t.Errorf("Simulated = %v", rep.Simulated)
	}

	snap := cloud.Metrics().Snapshot()
	for _, name := range []string{
		"scanner/sweeps", "vmi/pages_read", "vmi/pt_walks", "vmi/bytes_read",
		"hv/charges", "hv/clock_ns",
	} {
		if counterValue(snap, name) == 0 {
			t.Errorf("counter %s = 0 after a sweep", name)
		}
	}
	if got := counterValue(snap, "scanner/sweeps"); got != 1 {
		t.Errorf("scanner/sweeps = %d, want 1", got)
	}
	var hist *struct {
		count uint64
		sum   float64
	}
	for _, h := range snap.Histograms {
		if h.Name == "scanner/sweep_sim_seconds" {
			hist = &struct {
				count uint64
				sum   float64
			}{h.Count, h.Sum}
		}
	}
	if hist == nil || hist.count != 1 || hist.sum <= 0 {
		t.Errorf("scanner/sweep_sim_seconds histogram = %+v, want one positive observation", hist)
	}

	// Text and JSON renders of the same snapshot are deterministic.
	var a, c bytes.Buffer
	if err := snap.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := cloud.Metrics().Snapshot().WriteText(&c); err != nil {
		t.Fatal(err)
	}
	if a.String() != c.String() {
		t.Error("two snapshots of a quiesced registry render differently")
	}
}

// TestTraceDisabledPathUnchanged: with tracing off (nil tracer) the scanner
// and pipeline run exactly as before — same verdicts, same simulated clock —
// and the trace accessors degrade gracefully.
func TestTraceDisabledPathUnchanged(t *testing.T) {
	run := func(enable bool) (string, *Cloud) {
		cloud := testCloud(t, 4, 139)
		if enable {
			cloud.EnableTrace(0)
		}
		if err := InfectPreset(cloud, "Dom2", "opcode-patch"); err != nil {
			t.Fatal(err)
		}
		sc := cloud.NewScanner(WithParallel())
		rep, err := sc.Sweep()
		if err != nil {
			t.Fatal(err)
		}
		return sweepFingerprint(rep) + fmt.Sprintf("clock=%v", cloud.Hypervisor().Clock().Now()), cloud
	}
	off, cloudOff := run(false)
	on, _ := run(true)
	if off != on {
		t.Errorf("tracing changed results:\n--- off\n%s\n--- on\n%s", off, on)
	}
	if cloudOff.Tracer() != nil {
		t.Error("Tracer() non-nil without EnableTrace")
	}
	var buf bytes.Buffer
	if err := cloudOff.Tracer().WriteChromeJSON(&buf); err == nil {
		t.Error("nil tracer export did not error")
	}
}
