package modchecker

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"modchecker/internal/report"
)

// poolFingerprint serializes everything the clustered and full-pairwise
// comparison stages must agree on — verdicts, flags, pairs, per-component
// tallies — and nothing timing-dependent.
func poolFingerprint(rep *PoolReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module=%s healthy=%d flagged=%v inconclusive=%v errored=%v\n",
		rep.ModuleName, rep.Healthy, rep.Flagged, rep.Inconclusive, rep.Errored)
	for _, r := range rep.VMReports {
		fmt.Fprintf(&b, "vm=%s verdict=%v succ=%d comp=%d errclass=%v err=%v\n",
			r.TargetVM, r.Verdict, r.Successes, r.Comparisons, r.ErrClass, r.Err != nil)
		for _, p := range r.Pairs {
			fmt.Fprintf(&b, "  pair peer=%s match=%v mm=%v errclass=%v\n",
				p.PeerVM, p.Match, p.MismatchedComponents, p.ErrClass)
		}
		for _, c := range r.Components {
			fmt.Fprintf(&b, "  comp %s matches=%d mismatches=%d vms=%v\n",
				c.Name, c.Matches, c.Mismatches, c.MismatchedVMs)
		}
	}
	return b.String()
}

// infectedCloud builds the paper's 15-VM pool with all four evaluation
// infections (E1–E4), each on a different VM and module.
func infectedCloud(t *testing.T, seed int64) *Cloud {
	t.Helper()
	cloud := testCloud(t, 15, seed)
	if err := InfectOpcode(cloud, "Dom3", "hal.dll"); err != nil {
		t.Fatal(err)
	}
	if err := InfectInlineHookLive(cloud, "Dom6", "tcpip.sys"); err != nil {
		t.Fatal(err)
	}
	if err := InfectStubPatch(cloud, "Dom9", "dummy.sys", "DOS", "CHK"); err != nil {
		t.Fatal(err)
	}
	if err := InfectDLLHook(cloud, "Dom12", "ndis.sys", "inject.dll", "callMessageBox"); err != nil {
		t.Fatal(err)
	}
	return cloud
}

// TestClusteredMatchesPairwiseInfected is the acceptance differential: on a
// 15-VM pool carrying all four of the paper's infections, the digest
// pre-clustering path must produce reports identical to the legacy O(n²)
// full-pairwise path for every module — clean and infected alike.
func TestClusteredMatchesPairwiseInfected(t *testing.T) {
	// Two identically seeded, identically infected clouds: one per path, so
	// neither run's handle state can influence the other.
	clustered := infectedCloud(t, 42)
	pairwise := infectedCloud(t, 42)

	mods, err := clustered.NewChecker().ListModules("Dom1")
	if err != nil {
		t.Fatal(err)
	}
	infected := map[string]string{
		"hal.dll": "Dom3", "tcpip.sys": "Dom6", "dummy.sys": "Dom9", "ndis.sys": "Dom12",
	}
	for _, m := range mods {
		a, err := clustered.NewChecker().CheckPool(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pairwise.NewChecker(WithFullPairwise()).CheckPool(m.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := poolFingerprint(a), poolFingerprint(b); got != want {
			t.Errorf("%s: clustered diverges from pairwise:\n--- clustered\n%s--- pairwise\n%s",
				m.Name, got, want)
		}
		if vm, ok := infected[m.Name]; ok {
			if len(a.Flagged) != 1 || a.Flagged[0] != vm {
				t.Errorf("%s: Flagged = %v, want [%s]", m.Name, a.Flagged, vm)
			}
		} else if len(a.Flagged) != 0 {
			t.Errorf("%s: clean module flagged %v", m.Name, a.Flagged)
		}
	}
}

// TestClusteredMatchesPairwiseUnderFaults runs the differential through a
// fault plan: transient outages crossed by retries, a permanently dead VM.
// Each path gets a fresh identically seeded cloud and plan, because fault
// schedules are stateful read-index counters.
func TestClusteredMatchesPairwiseUnderFaults(t *testing.T) {
	run := func(full bool) string {
		cloud := testCloud(t, 15, 42)
		plan := NewFaultPlan(1234)
		plan.FailReads("Dom3", 0, 2)
		plan.FailForever("Dom9", 0)
		cloud.InstallFaultPlan(plan)
		opts := []CheckerOption{WithRetry(DefaultRetryPolicy())}
		if full {
			opts = append(opts, WithFullPairwise())
		}
		rep, err := cloud.NewChecker(opts...).CheckPool("hal.dll")
		if err != nil {
			t.Fatal(err)
		}
		return poolFingerprint(rep)
	}
	a, b := run(false), run(true)
	if a != b {
		t.Errorf("fault differential diverges:\n--- clustered\n%s--- pairwise\n%s", a, b)
	}
	if !strings.Contains(a, "errored=[Dom9]") {
		t.Errorf("Dom9 not errored:\n%s", a)
	}
}

// TestParallelSweepDeterministic pins the PR's determinism criterion: two
// sweeps from one seed under the parallel pipeline produce byte-identical
// PoolReport JSON for every module.
func TestParallelSweepDeterministic(t *testing.T) {
	run := func() []string {
		cloud := testCloud(t, 15, 42)
		if err := InfectOpcode(cloud, "Dom7", "hal.dll"); err != nil {
			t.Fatal(err)
		}
		sweep, err := cloud.NewChecker(WithParallel()).NewPoolSweep()
		if err != nil {
			t.Fatal(err)
		}
		mods, err := sweep.Modules()
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, rep := range sweep.CheckModules(mods) {
			var buf bytes.Buffer
			if err := report.WritePoolJSON(&buf, rep); err != nil {
				t.Fatal(err)
			}
			out = append(out, buf.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs produced %d vs %d reports", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("report %d differs across identically seeded parallel runs:\n--- run 1\n%s--- run 2\n%s",
				i, a[i], b[i])
		}
	}
	flagged := 0
	for _, j := range a {
		if strings.Contains(j, "Dom7") && strings.Contains(j, "ALTERED") {
			flagged++
		}
	}
	if flagged == 0 {
		t.Error("infected Dom7 never flagged in the sweep output")
	}
}

// TestParallelMatchesSequentialSweep pins that the parallel pipeline changes
// only timing, never findings.
func TestParallelMatchesSequentialSweep(t *testing.T) {
	run := func(opts ...CheckerOption) []string {
		cloud := testCloud(t, 8, 99)
		sweep, err := cloud.NewChecker(opts...).NewPoolSweep()
		if err != nil {
			t.Fatal(err)
		}
		mods, err := sweep.Modules()
		if err != nil {
			t.Fatal(err)
		}
		var sigs []string
		for _, rep := range sweep.CheckModules(mods) {
			sigs = append(sigs, poolFingerprint(rep))
		}
		return sigs
	}
	seq := run()
	par := run(WithParallel())
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("module %d: parallel sweep diverges from sequential:\n--- seq\n%s--- par\n%s",
				i, seq[i], par[i])
		}
	}
}

// TestScannerObservesModuleLoadedBetweenSweeps pins the module-table
// snapshot's freshness contract: the snapshot lives for one sweep, so a
// module loaded into the guests after sweep N is discovered by sweep N+1.
func TestScannerObservesModuleLoadedBetweenSweeps(t *testing.T) {
	cloud := testCloud(t, 4, 7)
	for _, g := range cloud.Guests() {
		if err := g.UnloadModule("dummy.sys"); err != nil {
			t.Fatal(err)
		}
	}
	sc := cloud.NewScanner()
	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Clean() {
		t.Fatalf("sweep 1 not clean: %+v", rep1)
	}
	for _, g := range cloud.Guests() {
		if _, err := g.LoadModule("dummy.sys"); err != nil {
			t.Fatal(err)
		}
	}
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() {
		t.Fatalf("sweep 2 not clean: %+v", rep2)
	}
	if rep2.ModulesChecked != rep1.ModulesChecked+1 {
		t.Errorf("sweep 2 checked %d modules, sweep 1 checked %d — newly loaded module not observed",
			rep2.ModulesChecked, rep1.ModulesChecked)
	}
}

// TestRevertInvalidatesTranslationCache pins the facade wiring: a snapshot
// revert bumps the domain's mapping epoch, so a previously warm handle pays
// fresh page-table walks afterwards.
func TestRevertInvalidatesTranslationCache(t *testing.T) {
	cloud := testCloud(t, 2, 11)
	h, err := cloud.OpenVMI("Dom1")
	if err != nil {
		t.Fatal(err)
	}
	base := cloud.Guest("Dom1").Module("hal.dll").Base
	buf := make([]byte, 64)
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	warm := h.Stats()
	if warm.TLBHits == 0 {
		t.Fatalf("no TLB hit on repeat read: %+v", warm)
	}
	d := cloud.Domain("Dom1")
	if err := d.TakeSnapshot("pre"); err != nil {
		t.Fatal(err)
	}
	if err := d.Revert("pre"); err != nil {
		t.Fatal(err)
	}
	if err := h.ReadVA(base, buf); err != nil {
		t.Fatal(err)
	}
	after := h.Stats()
	if after.PTWalks != warm.PTWalks+1 {
		t.Errorf("post-revert read did not re-walk: before %+v, after %+v", warm, after)
	}
}

// TestNoTranslationCacheCloud pins the benchmark baseline switch: a cloud
// built with NoTranslationCache pays a page-table walk per translation.
func TestNoTranslationCacheCloud(t *testing.T) {
	cloud, err := NewCloud(CloudConfig{VMs: 2, Seed: 11, NoTranslationCache: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := cloud.OpenVMI("Dom1")
	if err != nil {
		t.Fatal(err)
	}
	base := cloud.Guest("Dom1").Module("hal.dll").Base
	buf := make([]byte, 64)
	for i := 0; i < 3; i++ {
		if err := h.ReadVA(base, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := h.Stats()
	if s.PTWalks != 3 || s.TLBHits != 0 {
		t.Errorf("uncached cloud handle: %+v, want 3 walks / 0 hits", s)
	}
	if agg := cloud.IntrospectionStats(); agg.PTWalks != 3 {
		t.Errorf("cloud aggregate stats: %+v", agg)
	}
}
