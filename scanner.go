package modchecker

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"modchecker/internal/core"
	"modchecker/internal/metrics"
	"modchecker/internal/trace"
)

// HealthState is one VM's position in the scanner's health machine. VMs
// move Healthy -> Suspect on their first failing sweep, Suspect ->
// Quarantined after HealthPolicy.QuarantineAfter consecutive failures, and
// Quarantined -> Healthy again when a periodic probe succeeds.
type HealthState int

const (
	// HealthHealthy: the VM checks normally.
	HealthHealthy HealthState = iota
	// HealthSuspect: the VM failed its last sweep(s) but is still checked.
	HealthSuspect
	// HealthQuarantined: the VM failed too many consecutive sweeps and is
	// excluded from sweeps except for periodic readmission probes.
	HealthQuarantined
)

// String renders the health state.
func (h HealthState) String() string {
	switch h {
	case HealthHealthy:
		return "HEALTHY"
	case HealthSuspect:
		return "SUSPECT"
	case HealthQuarantined:
		return "QUARANTINED"
	default:
		return fmt.Sprintf("HealthState(%d)", int(h))
	}
}

// HealthPolicy tunes the scanner's health machine.
type HealthPolicy struct {
	// QuarantineAfter is how many consecutive failing sweeps move a VM to
	// quarantine (values below 1 behave as 1).
	QuarantineAfter int
	// ReadmitAfter is how many sweeps a quarantined VM sits out before a
	// readmission probe re-includes it (values below 1 behave as 1).
	ReadmitAfter int
}

// DefaultHealthPolicy quarantines after 3 consecutive failing sweeps and
// probes quarantined VMs every 2 sweeps.
func DefaultHealthPolicy() HealthPolicy {
	return HealthPolicy{QuarantineAfter: 3, ReadmitAfter: 2}
}

// BudgetPolicy caps how much simulated time a sweep may spend. Both budgets
// are measured against the sweep's modeled elapsed time, never the live
// clock, so identical seeds stop at identical module boundaries. Zero
// disables either cap.
type BudgetPolicy struct {
	// SweepBudget caps one sweep's total simulated time (list walk included).
	// When it runs out mid-sweep the remaining modules are checkpointed and
	// the sweep returns a well-formed partial report; the next Sweep resumes
	// from the checkpoint.
	SweepBudget time.Duration
	// VMBudget caps the simulated fetch time spent on any single VM within a
	// sweep. A VM past its budget is skipped for the remaining modules —
	// without health strikes — while its peers continue.
	VMBudget time.Duration
}

// BreakerPolicy tunes the per-domain circuit breakers layered on the health
// machine: a breaker opens after TripAfter consecutive permanent-class
// failures (unreadable-forever guests, or control-plane operations that keep
// failing), sending the VM straight to quarantine regardless of the slower
// strike count. The regular readmission probe doubles as the breaker's
// half-open state — one clean probe closes it.
type BreakerPolicy struct {
	// TripAfter is how many consecutive permanent failures open the breaker
	// (values below 1 behave as 1).
	TripAfter int
}

// DefaultBreakerPolicy trips after 2 consecutive permanent failures.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{TripAfter: 2}
}

// vmHealth is the per-VM health-machine state.
type vmHealth struct {
	state         HealthState
	strikes       int // consecutive failing sweeps
	quarantinedAt int // sweep number of the (latest) quarantine decision
	permStrikes   int // consecutive permanent-class failing sweeps
	breakerOpen   bool
}

// Alert is one integrity finding from a scanner sweep: a module on a VM
// that a majority of peers dispute, that produced no majority, or that could
// not be checked at all.
type Alert struct {
	Sweep      int
	Module     string
	VM         string
	Verdict    Verdict
	Components []string // mismatched components on that VM
	// Reason explains non-clean verdicts in one line: the fault behind a
	// VerdictError, or why the vote was inconclusive.
	Reason string
}

// ModuleError records a module the sweep could not check on any VM. The
// sweep continues past it — one unloadable module must not abort the scan of
// everything else.
type ModuleError struct {
	Module string
	Err    error
}

// SweepReport summarizes one full scan of the cloud.
type SweepReport struct {
	Sweep          int
	ModulesChecked int
	VMs            int
	Alerts         []Alert
	// Errors lists modules that could not be checked anywhere this sweep.
	Errors []ModuleError
	// Health is each tracked VM's state after this sweep.
	Health map[string]HealthState
	// Quarantined lists VMs quarantined as of the end of this sweep;
	// Readmitted lists VMs whose probe succeeded this sweep; Skipped lists
	// quarantined VMs excluded from this sweep entirely.
	Quarantined []string
	Readmitted  []string
	Skipped     []string
	// Partial marks a sweep cut short by its time budget: Remaining lists
	// the modules never reached, checkpointed for the next sweep to finish
	// first. Resumed marks a sweep that started from such a checkpoint.
	Partial   bool
	Resumed   bool
	Remaining []string
	// BudgetExceeded lists VMs dropped mid-sweep by the per-VM budget. They
	// accrue no health strikes — the sweep ran out of time for them, they
	// did not fail.
	BudgetExceeded []string
	// BreakerOpen lists VMs whose circuit breaker is open at sweep end
	// (always a subset of Quarantined).
	BreakerOpen []string
	// Simulated is the testbed time the sweep consumed on the hypervisor
	// clock (introspection + hashing, contention-stretched).
	Simulated time.Duration
	// Timing breaks the sweep's simulated time down by pipeline stage —
	// where a sweep spends its clock, the attribution the paper's Figures
	// 7/8 give per component.
	Timing SweepTiming
}

// SweepTiming is a sweep's per-stage elapsed breakdown plus the total work
// per ModChecker component. List is the session's one-time module-table
// snapshot; Fetch/Digest/Compare sum each module's stage elapsed. In
// pipelined parallel mode the stage sums exceed Simulated, because module
// k+1's fetch overlaps module k's comparison.
type SweepTiming struct {
	List    time.Duration
	Fetch   time.Duration
	Digest  time.Duration
	Compare time.Duration
	// Work is the total effective Searcher/Parser/Checker work across all
	// VMs and modules of the sweep (aggregate, not wall time).
	Work PhaseTiming
}

// Clean reports whether the sweep positively established integrity: no
// alerts, no module errors, and actual coverage. A sweep that checked
// nothing — every module skipped or deferred to a checkpoint, every domain
// destroyed — proves nothing and is not clean.
func (r *SweepReport) Clean() bool {
	return len(r.Alerts) == 0 && len(r.Errors) == 0 && !r.Partial && r.ModulesChecked > 0
}

// Scanner is the operational mode the paper's conclusion sketches:
// ModChecker as a continuously running, light-weight consistency check
// whose flags trigger deeper analysis or a snapshot revert. Each Sweep
// enumerates the module list of a reference VM and pool-checks every
// module across all VMs, isolating per-module failures and tracking per-VM
// health so a persistently failing VM degrades the pool instead of the scan.
type Scanner struct {
	cloud   *Cloud
	checker *Checker
	modules []string // nil: discover from a reference VM each sweep
	sweeps  int
	policy  HealthPolicy
	budget  BudgetPolicy
	breaker BreakerPolicy
	health  map[string]*vmHealth
	// checkpoint is the sorted remainder of a budget-cut sweep; the next
	// Sweep checks it (and only it) before returning to full coverage.
	checkpoint []string

	// Sweep counters and histograms, resolved once against the cloud's
	// registry so the hot path never takes the registry lock.
	mSweeps       *metrics.Counter
	mAborted      *metrics.Counter
	mAlerts       *metrics.Counter
	mModuleErrors *metrics.Counter
	mQuarantines  *metrics.Counter
	mReadmissions *metrics.Counter
	mBreakerTrips *metrics.Counter
	mDeferred     *metrics.Counter
	mVMBudget     *metrics.Counter
	mResumed      *metrics.Counter
	hSweepSim     *metrics.Histogram
	hModuleSim    *metrics.Histogram
}

// NewScanner creates a scanner over the whole cloud. Checker options
// (WithParallel, WithRetry, ...) apply to every sweep. Restricting to
// specific modules is possible with SetModules.
func (c *Cloud) NewScanner(opts ...CheckerOption) *Scanner {
	reg := c.Metrics()
	return &Scanner{
		cloud:   c,
		checker: c.NewChecker(opts...),
		policy:  DefaultHealthPolicy(),
		breaker: DefaultBreakerPolicy(),
		health:  make(map[string]*vmHealth),

		mSweeps:       reg.Counter("scanner/sweeps"),
		mAborted:      reg.Counter("scanner/aborted_sweeps"),
		mAlerts:       reg.Counter("scanner/alerts"),
		mModuleErrors: reg.Counter("scanner/module_errors"),
		mQuarantines:  reg.Counter("scanner/quarantines"),
		mReadmissions: reg.Counter("scanner/readmissions"),
		mBreakerTrips: reg.Counter("scanner/breaker_trips"),
		mDeferred:     reg.Counter("scanner/budget_deferred_modules"),
		mVMBudget:     reg.Counter("scanner/vm_budget_skips"),
		mResumed:      reg.Counter("scanner/resumed_sweeps"),
		hSweepSim:     reg.Histogram("scanner/sweep_sim_seconds", nil),
		hModuleSim:    reg.Histogram("scanner/module_sim_seconds", nil),
	}
}

// SetModules restricts sweeps to the given module names; nil restores
// discovery of the full loaded-module list.
func (s *Scanner) SetModules(modules []string) { s.modules = modules }

// SetHealthPolicy replaces the health-machine policy.
func (s *Scanner) SetHealthPolicy(p HealthPolicy) {
	if p.QuarantineAfter < 1 {
		p.QuarantineAfter = 1
	}
	if p.ReadmitAfter < 1 {
		p.ReadmitAfter = 1
	}
	s.policy = p
}

// SetBudget arms (or, zeroed, disarms) the scanner's sweep time budgets.
func (s *Scanner) SetBudget(p BudgetPolicy) { s.budget = p }

// SetBreakerPolicy replaces the circuit-breaker policy.
func (s *Scanner) SetBreakerPolicy(p BreakerPolicy) {
	if p.TripAfter < 1 {
		p.TripAfter = 1
	}
	s.breaker = p
}

// Checkpoint returns the modules deferred by the last budget-cut sweep —
// what the next Sweep will finish first — or nil when no resume is pending.
func (s *Scanner) Checkpoint() []string {
	if s.checkpoint == nil {
		return nil
	}
	out := make([]string, len(s.checkpoint))
	copy(out, s.checkpoint)
	return out
}

// Sweeps returns how many sweeps have completed.
func (s *Scanner) Sweeps() int { return s.sweeps }

// Health returns the named VM's current health state.
func (s *Scanner) Health(vm string) HealthState {
	if h, ok := s.health[vm]; ok {
		return h.state
	}
	return HealthHealthy
}

func (s *Scanner) healthOf(vm string) *vmHealth {
	h, ok := s.health[vm]
	if !ok {
		h = &vmHealth{}
		s.health[vm] = h
	}
	return h
}

// partition splits the cloud's VMs for sweep number `sweep`: eligible VMs
// (healthy, suspect, and quarantined VMs due for a readmission probe)
// versus skipped quarantined VMs. Destroyed domains go straight to
// quarantine and into Skipped — there is nothing left to probe, but the
// operator should still see them accounted. A destroyed domain that is
// later re-created under the same name re-enters through the normal
// readmission-probe path once its timer expires.
func (s *Scanner) partition(rep *SweepReport, sweep int) (eligible []string, probing map[string]bool) {
	probing = make(map[string]bool)
	for _, name := range s.cloud.VMNames() {
		h := s.healthOf(name)
		d := s.cloud.Domain(name)
		if d == nil || d.Destroyed() {
			if h.state != HealthQuarantined {
				h.state = HealthQuarantined
				h.quarantinedAt = sweep
				s.mQuarantines.Inc()
				s.traceHealth(name, "destroyed", HealthQuarantined)
			}
			rep.Skipped = append(rep.Skipped, name)
			continue
		}
		if h.state != HealthQuarantined && d.ControlFailures() >= s.breaker.TripAfter {
			// The domain's control plane keeps failing: open the breaker
			// without waiting for read-path strikes. The readmission probe
			// is the half-open state; a clean probe closes it again.
			h.state = HealthQuarantined
			h.quarantinedAt = sweep
			h.breakerOpen = true
			s.mQuarantines.Inc()
			s.mBreakerTrips.Inc()
			s.traceHealth(name, "breaker open", HealthQuarantined)
			rep.Skipped = append(rep.Skipped, name)
			continue
		}
		if h.state == HealthQuarantined {
			if sweep-h.quarantinedAt >= s.policy.ReadmitAfter {
				probing[name] = true
				eligible = append(eligible, name)
			} else {
				rep.Skipped = append(rep.Skipped, name)
			}
			continue
		}
		eligible = append(eligible, name)
	}
	return eligible, probing
}

// traceHealth records one health-machine transition on the scanner track.
// Callers run on the sweep driver goroutine and iterate VMs in sorted
// order, so emission order is deterministic.
func (s *Scanner) traceHealth(vm, cause string, to HealthState) {
	tr := s.cloud.Tracer()
	if tr == nil {
		return
	}
	tr.Instant("health "+vm, "scanner", trace.PIDPipeline, 0, tr.Cursor(),
		trace.Arg{Key: "vm", Val: vm},
		trace.Arg{Key: "cause", Val: cause},
		trace.Arg{Key: "state", Val: to.String()})
}

// discoverModules finds the module set to sweep from the session's
// module-table snapshot: the first eligible VM whose list walk succeeded —
// a faulty reference VM must not blind the whole sweep.
func (s *Scanner) discoverModules(session *PoolSweep, eligible []string) ([]string, error) {
	modules, err := session.Modules()
	if err != nil {
		return nil, fmt.Errorf("modchecker: scanner discovery failed on all %d eligible VMs: %w",
			len(eligible), err)
	}
	return modules, nil
}

// Sweep checks every module across every eligible VM once and returns the
// findings. Failures are contained at the smallest possible scope: a module
// that cannot be checked lands in Errors, a VM that cannot be read lands in
// Alerts with VerdictError and accrues a health strike, and only an empty
// eligible pool or failed discovery aborts the sweep.
//
//modsafe:charged
func (s *Scanner) Sweep() (*SweepReport, error) {
	// The sweep number is provisional until the sweep completes: aborted
	// sweeps must not advance the health clock, or every abort would
	// silently shrink quarantine and readmission timers computed as
	// "sweeps since quarantinedAt".
	sweep := s.sweeps + 1
	rep := &SweepReport{Sweep: sweep}
	start := s.cloud.Hypervisor().Clock().Now()
	tr := s.cloud.Tracer()
	tr.AlignTo(start)
	base := tr.Cursor()

	eligible, probing := s.partition(rep, sweep)
	rep.VMs = len(eligible)
	if len(eligible) < 2 {
		return nil, s.abortSweep(tr, sweep, fmt.Errorf(
			"modchecker: sweep %d has %d eligible VMs, need at least 2", sweep, len(eligible)))
	}

	// One session per sweep: every eligible VM's LDR list is walked exactly
	// once and the snapshot (plus warm introspection handles) is reused for
	// every module below. A module loaded between sweeps is observed by the
	// next sweep's fresh snapshot.
	session, err := s.checker.NewPoolSweep(eligible...)
	if err != nil {
		return nil, s.abortSweep(tr, sweep, fmt.Errorf("modchecker: sweep %d: %w", sweep, err))
	}
	defer session.Close()
	rep.Timing.List = session.ListElapsed

	// A pending checkpoint takes priority over fresh discovery: the budget
	// already paid for the list walk of the cut sweep, so the remainder is
	// finished before coverage restarts from the top. Work behind the
	// checkpoint is never re-charged — the resumed sweep checks only what
	// the cut sweep deferred.
	modules := s.checkpoint
	if modules != nil {
		rep.Resumed = true
		s.mResumed.Inc()
	} else if modules = s.modules; modules == nil {
		if modules, err = s.discoverModules(session, eligible); err != nil {
			return nil, s.abortSweep(tr, sweep, err)
		}
	}
	sort.Strings(modules)
	if s.budget.SweepBudget > 0 || s.budget.VMBudget > 0 {
		session.SetBudgets(s.budget.SweepBudget, s.budget.VMBudget)
	}

	// The sweep span opens retroactively at the sweep's start cursor and is
	// emitted only on completion — aborted sweeps leave no span, exactly as
	// before. Every abort point is above this line, so the span is released
	// on the single remaining exit.
	span := tr.StartSpan("sweep "+strconv.Itoa(sweep), "scanner", trace.PIDPipeline, 0, base)

	// failed maps VMs that produced at least one VerdictError against a
	// pool that still had healthy members — evidence the VM (not the
	// module or the pool) is the problem — to the worst fault class seen
	// (permanent outranks transient; permanent classes feed the breaker).
	failed := make(map[string]FaultClass)
	participated := make(map[string]bool)
	overBudget := make(map[string]bool)
	for _, vm := range eligible {
		participated[vm] = true
	}

	// Stream per-module reports as they complete instead of collecting them
	// all first: each PoolReport is folded into the sweep report and dropped,
	// so the sweep never holds more than one module's reports at a time —
	// the invariant that keeps fleet-scale sweeps' memory flat. In parallel
	// (non-fleet) mode the session still pipelines: module k+1's fetches
	// overlap module k's comparison stage.
	mi := 0
	session.CheckModulesFunc(modules, func(pool *PoolReport) {
		module := modules[mi]
		mi++
		if pool.BudgetSkipped {
			// The sweep budget ran out before this module: defer it to the
			// checkpoint. No work ran, so there is nothing to account.
			rep.Remaining = append(rep.Remaining, module)
			return
		}
		rep.Timing.Fetch += pool.Stages.Fetch
		rep.Timing.Digest += pool.Stages.Digest
		rep.Timing.Compare += pool.Stages.Compare
		rep.Timing.Work.Add(pool.Timing)
		s.hModuleSim.ObserveDuration(pool.Elapsed)
		if pool.Healthy == 0 {
			if allOverVMBudget(pool) {
				// Every fetch was declined by the per-VM budget — time ran
				// out pool-wide, nothing actually failed. Treat the module
				// exactly like a sweep-budget skip.
				rep.Remaining = append(rep.Remaining, module)
				for _, r := range pool.VMReports {
					overBudget[r.TargetVM] = true
				}
				return
			}
			// Nothing could fetch this module: a module-level problem, not
			// evidence against any VM. Record once and move on.
			rep.Errors = append(rep.Errors, ModuleError{Module: module,
				Err: fmt.Errorf("modchecker: %s unreadable on all %d VMs", module, len(eligible))})
			s.mModuleErrors.Inc()
			return
		}
		rep.ModulesChecked++
		for _, r := range pool.VMReports {
			if r.Verdict == VerdictClean {
				continue
			}
			if r.Verdict == VerdictError {
				if errors.Is(r.Err, core.ErrVMBudget) {
					// Out of time, not out of order: no alert, no strike.
					overBudget[r.TargetVM] = true
					continue
				}
				if class := r.ErrClass; class > failed[r.TargetVM] {
					failed[r.TargetVM] = class
				}
			}
			rep.Alerts = append(rep.Alerts, Alert{
				Sweep:      sweep,
				Module:     module,
				VM:         r.TargetVM,
				Verdict:    r.Verdict,
				Components: r.MismatchedComponents(),
				Reason:     r.Reason(),
			})
		}
	})
	rep.Timing.Work.Searcher += session.ListTiming

	// Account budget outcomes. Modules never reached become the checkpoint
	// the next sweep resumes from; VMs dropped by the per-VM budget are
	// reported but accrue no health movement at all — skipping their health
	// update keeps readmission probes armed for a sweep that actually
	// reaches them.
	for vm := range overBudget {
		rep.BudgetExceeded = append(rep.BudgetExceeded, vm)
		delete(participated, vm)
		delete(probing, vm)
	}
	sort.Strings(rep.BudgetExceeded)
	s.mVMBudget.Add(uint64(len(rep.BudgetExceeded)))
	if len(rep.Remaining) > 0 {
		rep.Partial = true
		s.checkpoint = make([]string, len(rep.Remaining))
		copy(s.checkpoint, rep.Remaining)
		s.mDeferred.Add(uint64(len(rep.Remaining)))
	} else {
		s.checkpoint = nil
	}
	if rep.ModulesChecked == 0 {
		// The sweep established nothing about anyone: freeze the health
		// machine entirely so probes re-fire and strikes neither grow nor
		// reset on zero evidence.
		participated = map[string]bool{}
		probing = map[string]bool{}
	}

	// The sweep completed: only now does the health clock advance.
	s.sweeps = sweep
	s.mSweeps.Inc()
	s.mAlerts.Add(uint64(len(rep.Alerts)))
	s.updateHealth(rep, failed, participated, probing)
	rep.Simulated = s.cloud.Hypervisor().Clock().Now() - start
	s.hSweepSim.ObserveDuration(rep.Simulated)
	span.End(
		trace.Arg{Key: "modules", Val: strconv.Itoa(rep.ModulesChecked)},
		trace.Arg{Key: "vms", Val: strconv.Itoa(rep.VMs)},
		trace.Arg{Key: "alerts", Val: strconv.Itoa(len(rep.Alerts))})
	// All workers have joined: fold the deferred fault/lifecycle events
	// into the ring at this deterministic boundary.
	tr.Flush()
	return rep, nil
}

// abortSweep accounts an aborted sweep attempt — without advancing the
// health clock — and passes the error through.
func (s *Scanner) abortSweep(tr *trace.Tracer, sweep int, err error) error {
	s.mAborted.Inc()
	if tr != nil {
		tr.Instant("sweep "+strconv.Itoa(sweep)+" aborted", "scanner",
			trace.PIDPipeline, 0, tr.Cursor(),
			trace.Arg{Key: "error", Val: err.Error()})
		tr.Flush()
	}
	return err
}

// allOverVMBudget reports whether every errored fetch of the pool was a
// per-VM-budget skip (so the module failed for lack of time, not health).
func allOverVMBudget(pool *PoolReport) bool {
	if len(pool.VMReports) == 0 {
		return false
	}
	for _, r := range pool.VMReports {
		if !errors.Is(r.Err, core.ErrVMBudget) {
			return false
		}
	}
	return true
}

// updateHealth advances the health machine after a completed sweep. VMs are
// visited in sorted order — map iteration order must never leak into the
// trace's emission sequence.
func (s *Scanner) updateHealth(rep *SweepReport, failed map[string]FaultClass, participated, probing map[string]bool) {
	quarantineAfter := s.policy.QuarantineAfter
	if quarantineAfter < 1 {
		quarantineAfter = 1
	}
	vms := make([]string, 0, len(participated))
	for vm := range participated {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	for _, vm := range vms {
		h := s.healthOf(vm)
		was := h.state
		if class, bad := failed[vm]; bad {
			h.strikes++
			if class == FaultPermanent {
				h.permStrikes++
			} else {
				h.permStrikes = 0
			}
			trip := h.permStrikes >= s.breaker.TripAfter
			switch {
			case probing[vm] || h.strikes >= quarantineAfter || trip:
				// A failed probe re-quarantines immediately; repeat
				// offenders graduate from suspect; a run of permanent
				// failures trips the breaker without waiting for either.
				h.state = HealthQuarantined
				h.quarantinedAt = s.sweeps
				s.mQuarantines.Inc()
				cause := "failed sweep"
				if trip {
					cause = "breaker open"
					if !h.breakerOpen {
						s.mBreakerTrips.Inc()
					}
					h.breakerOpen = true
				}
				s.traceHealth(vm, cause, h.state)
			default:
				h.state = HealthSuspect
				if was != HealthSuspect {
					s.traceHealth(vm, "failed sweep", h.state)
				}
			}
			continue
		}
		if probing[vm] {
			rep.Readmitted = append(rep.Readmitted, vm)
			s.mReadmissions.Inc()
		}
		h.state = HealthHealthy
		h.strikes = 0
		h.permStrikes = 0
		if h.breakerOpen {
			// The half-open probe came back clean: close the breaker and
			// forgive the domain's control-plane failure streak.
			h.breakerOpen = false
			if d := s.cloud.Domain(vm); d != nil {
				d.ResetControlFailures()
			}
			s.traceHealth(vm, "breaker close", h.state)
		} else if was != HealthHealthy {
			s.traceHealth(vm, "clean sweep", h.state)
		}
	}
	rep.Health = make(map[string]HealthState, len(s.health))
	tracked := make([]string, 0, len(s.health))
	for vm := range s.health {
		tracked = append(tracked, vm)
	}
	sort.Strings(tracked)
	for _, vm := range tracked {
		h := s.health[vm]
		rep.Health[vm] = h.state
		if h.state == HealthQuarantined {
			rep.Quarantined = append(rep.Quarantined, vm)
		}
		if h.breakerOpen {
			rep.BreakerOpen = append(rep.BreakerOpen, vm)
		}
	}
	sort.Strings(rep.Readmitted)
	sort.Strings(rep.Skipped)
}
