package modchecker

import (
	"fmt"
	"sort"
	"time"
)

// Alert is one integrity finding from a scanner sweep: a module on a VM
// that a majority of peers dispute (or that produced no majority at all).
type Alert struct {
	Sweep      int
	Module     string
	VM         string
	Verdict    Verdict
	Components []string // mismatched components on that VM
}

// SweepReport summarizes one full scan of the cloud.
type SweepReport struct {
	Sweep          int
	ModulesChecked int
	VMs            int
	Alerts         []Alert
	// Simulated is the testbed time the sweep consumed on the hypervisor
	// clock (introspection + hashing, contention-stretched).
	Simulated time.Duration
}

// Clean reports whether the sweep raised no alerts.
func (r *SweepReport) Clean() bool { return len(r.Alerts) == 0 }

// Scanner is the operational mode the paper's conclusion sketches:
// ModChecker as a continuously running, light-weight consistency check
// whose flags trigger deeper analysis or a snapshot revert. Each Sweep
// enumerates the module list of a reference VM and pool-checks every
// module across all VMs.
type Scanner struct {
	cloud   *Cloud
	checker *Checker
	modules []string // nil: discover from the reference VM each sweep
	sweeps  int
}

// NewScanner creates a scanner over the whole cloud. Checker options
// (WithParallel, ...) apply to every sweep. Restricting to specific
// modules is possible with SetModules.
func (c *Cloud) NewScanner(opts ...CheckerOption) *Scanner {
	return &Scanner{cloud: c, checker: c.NewChecker(opts...)}
}

// SetModules restricts sweeps to the given module names; nil restores
// discovery of the full loaded-module list.
func (s *Scanner) SetModules(modules []string) { s.modules = modules }

// Sweeps returns how many sweeps have completed.
func (s *Scanner) Sweeps() int { return s.sweeps }

// Sweep checks every module across every VM once and returns the findings.
func (s *Scanner) Sweep() (*SweepReport, error) {
	s.sweeps++
	rep := &SweepReport{Sweep: s.sweeps, VMs: len(s.cloud.VMNames())}
	start := s.cloud.Hypervisor().Clock().Now()

	modules := s.modules
	if modules == nil {
		// Discover the module set from the first VM; modules missing
		// elsewhere surface as inconclusive VM reports.
		infos, err := s.checker.ListModules(s.cloud.VMNames()[0])
		if err != nil {
			return nil, fmt.Errorf("modchecker: scanner discovery: %w", err)
		}
		for _, m := range infos {
			modules = append(modules, m.Name)
		}
	}
	sort.Strings(modules)

	for _, module := range modules {
		pool, err := s.checker.CheckPool(module)
		if err != nil {
			return nil, fmt.Errorf("modchecker: sweeping %s: %w", module, err)
		}
		rep.ModulesChecked++
		for _, r := range pool.VMReports {
			if r.Verdict == VerdictClean {
				continue
			}
			rep.Alerts = append(rep.Alerts, Alert{
				Sweep:      s.sweeps,
				Module:     module,
				VM:         r.TargetVM,
				Verdict:    r.Verdict,
				Components: r.MismatchedComponents(),
			})
		}
	}
	rep.Simulated = s.cloud.Hypervisor().Clock().Now() - start
	return rep, nil
}
