package modchecker

import (
	"testing"
	"time"
)

// TestSweepBudgetPartialAndResume pins the checkpoint/resume contract: a
// sweep that exhausts its budget mid-flight returns a well-formed partial
// report (not an error), the next sweep finishes exactly the remainder, and
// no module is ever checked twice across the cut/resume pair.
func TestSweepBudgetPartialAndResume(t *testing.T) {
	cloud := testCloud(t, 4, 211)
	sc := cloud.NewScanner()

	// Sweep 1, unbudgeted: measure a full sweep's modeled spend.
	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	total := rep1.ModulesChecked
	if total < 3 {
		t.Fatalf("need several modules to cut, have %d", total)
	}

	// Sweep 2: budget for the list walk plus about half the module work.
	work := rep1.Timing.Fetch + rep1.Timing.Digest + rep1.Timing.Compare
	sc.SetBudget(BudgetPolicy{SweepBudget: rep1.Timing.List + work/2})
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Partial || rep2.Resumed {
		t.Fatalf("budgeted sweep: Partial=%v Resumed=%v", rep2.Partial, rep2.Resumed)
	}
	if rep2.Clean() {
		t.Error("a partial sweep must not report clean")
	}
	if rep2.ModulesChecked < 1 || len(rep2.Remaining) < 1 {
		t.Fatalf("checked=%d remaining=%v — expected a mid-sweep cut", rep2.ModulesChecked, rep2.Remaining)
	}
	if rep2.ModulesChecked+len(rep2.Remaining) != total {
		t.Errorf("checked %d + remaining %d != %d modules", rep2.ModulesChecked, len(rep2.Remaining), total)
	}
	cp := sc.Checkpoint()
	if len(cp) != len(rep2.Remaining) {
		t.Errorf("Checkpoint() = %v, want %v", cp, rep2.Remaining)
	}

	// Sweep 3, disarmed: resumes the checkpoint and checks exactly the
	// remainder — checkpointed work is never re-charged.
	sc.SetBudget(BudgetPolicy{})
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Resumed || rep3.Partial {
		t.Fatalf("resumed sweep: Resumed=%v Partial=%v", rep3.Resumed, rep3.Partial)
	}
	if rep3.ModulesChecked != len(rep2.Remaining) {
		t.Errorf("resumed sweep checked %d modules, want exactly the %d deferred",
			rep3.ModulesChecked, len(rep2.Remaining))
	}
	if rep2.ModulesChecked+rep3.ModulesChecked != total {
		t.Errorf("cut+resume checked %d modules total, want %d (a module was re-checked or dropped)",
			rep2.ModulesChecked+rep3.ModulesChecked, total)
	}
	if !rep3.Clean() {
		t.Errorf("resumed sweep not clean: %+v / %+v", rep3.Alerts, rep3.Errors)
	}
	if sc.Checkpoint() != nil {
		t.Errorf("checkpoint survived a completed resume: %v", sc.Checkpoint())
	}

	// Sweep 4: full coverage is restored.
	rep4, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Resumed || rep4.ModulesChecked != total {
		t.Errorf("post-resume sweep: Resumed=%v checked=%d, want full %d", rep4.Resumed, rep4.ModulesChecked, total)
	}

	snap := cloud.Metrics().Snapshot()
	if got := counterValue(snap, "scanner/resumed_sweeps"); got != 1 {
		t.Errorf("scanner/resumed_sweeps = %d, want 1", got)
	}
	if got := counterValue(snap, "scanner/budget_deferred_modules"); got != uint64(len(rep2.Remaining)) {
		t.Errorf("scanner/budget_deferred_modules = %d, want %d", got, len(rep2.Remaining))
	}
}

// TestSweepBudgetZeroCoverageFreezesHealth: a sweep whose budget dies before
// any module proves nothing, so the health machine must not move — in
// particular a readmission probe must not succeed on zero evidence.
func TestSweepBudgetZeroCoverageFreezesHealth(t *testing.T) {
	cloud := testCloud(t, 4, 223)
	plan := NewFaultPlan(37)
	plan.FailForever("Dom3", 0)
	cloud.InstallFaultPlan(plan)

	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})
	sc.SetHealthPolicy(HealthPolicy{QuarantineAfter: 1, ReadmitAfter: 1})

	// Sweep 1: Dom3 fails and is quarantined.
	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Health["Dom3"] != HealthQuarantined {
		t.Fatalf("sweep 1 health = %v", rep1.Health)
	}

	// Sweep 2 is due to probe Dom3, but a 1ns budget kills coverage before
	// the first module: the probe must not readmit on zero evidence.
	sc.SetBudget(BudgetPolicy{SweepBudget: time.Nanosecond})
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ModulesChecked != 0 || !rep2.Partial || len(rep2.Remaining) != 1 {
		t.Fatalf("zero-coverage sweep: checked=%d partial=%v remaining=%v",
			rep2.ModulesChecked, rep2.Partial, rep2.Remaining)
	}
	if rep2.Clean() {
		t.Error("a sweep that checked nothing must not report clean")
	}
	if len(rep2.Readmitted) != 0 || rep2.Health["Dom3"] != HealthQuarantined {
		t.Errorf("zero-coverage sweep moved the health machine: readmitted=%v health=%v",
			rep2.Readmitted, rep2.Health)
	}

	// Faults clear; the disarmed sweep resumes the checkpoint, the probe
	// re-fires, and Dom3 is readmitted on real evidence.
	plan.Quiesce()
	sc.SetBudget(BudgetPolicy{})
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Resumed || rep3.ModulesChecked != 1 {
		t.Fatalf("resume sweep: Resumed=%v checked=%d", rep3.Resumed, rep3.ModulesChecked)
	}
	if len(rep3.Readmitted) != 1 || rep3.Readmitted[0] != "Dom3" {
		t.Errorf("sweep 3 Readmitted = %v, want [Dom3]", rep3.Readmitted)
	}
}

// TestVMBudgetSkipsWithoutStrikes: VMs dropped by the per-VM budget are
// surfaced in BudgetExceeded but accrue no alerts and no health strikes —
// running out of time is not a failure.
func TestVMBudgetSkipsWithoutStrikes(t *testing.T) {
	cloud := testCloud(t, 3, 227)
	sc := cloud.NewScanner()
	sc.SetBudget(BudgetPolicy{VMBudget: time.Nanosecond})

	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	// The first module always runs (spend starts at zero); everything after
	// finds every VM over budget and defers to the checkpoint.
	if rep.ModulesChecked != 1 {
		t.Fatalf("checked %d modules, want 1", rep.ModulesChecked)
	}
	if !rep.Partial || len(rep.Remaining) == 0 {
		t.Fatalf("Partial=%v Remaining=%v", rep.Partial, rep.Remaining)
	}
	if len(rep.Alerts) != 0 {
		t.Errorf("budget skips raised alerts: %+v", rep.Alerts)
	}
	want := []string{"Dom1", "Dom2", "Dom3"}
	if len(rep.BudgetExceeded) != len(want) {
		t.Fatalf("BudgetExceeded = %v, want %v", rep.BudgetExceeded, want)
	}
	for i, vm := range want {
		if rep.BudgetExceeded[i] != vm {
			t.Fatalf("BudgetExceeded = %v, want %v", rep.BudgetExceeded, want)
		}
		if rep.Health[vm] != HealthHealthy {
			t.Errorf("%s = %v after budget skip, want healthy", vm, rep.Health[vm])
		}
	}
	snap := cloud.Metrics().Snapshot()
	if got := counterValue(snap, "scanner/vm_budget_skips"); got != 3 {
		t.Errorf("scanner/vm_budget_skips = %d, want 3", got)
	}

	// Disarmed resume completes the remainder.
	sc.SetBudget(BudgetPolicy{})
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Resumed || rep2.ModulesChecked != len(rep.Remaining) {
		t.Errorf("resume: Resumed=%v checked=%d want %d", rep2.Resumed, rep2.ModulesChecked, len(rep.Remaining))
	}
}

// TestBreakerTripsOnPermanentReadFailures: consecutive permanent-class read
// failures open the circuit breaker well before the (slower) strike
// threshold, and one clean readmission probe closes it again.
func TestBreakerTripsOnPermanentReadFailures(t *testing.T) {
	cloud := testCloud(t, 4, 229)
	plan := NewFaultPlan(41)
	plan.FailForever("Dom3", 0)
	cloud.InstallFaultPlan(plan)

	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})
	// Strikes alone would need 5 failing sweeps; the breaker takes 2.
	sc.SetHealthPolicy(HealthPolicy{QuarantineAfter: 5, ReadmitAfter: 2})
	sc.SetBreakerPolicy(BreakerPolicy{TripAfter: 2})

	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Health["Dom3"] != HealthSuspect || len(rep1.BreakerOpen) != 0 {
		t.Fatalf("sweep 1: health=%v breaker=%v", rep1.Health["Dom3"], rep1.BreakerOpen)
	}

	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Health["Dom3"] != HealthQuarantined {
		t.Fatalf("second permanent failure did not trip the breaker: %v", rep2.Health)
	}
	if len(rep2.BreakerOpen) != 1 || rep2.BreakerOpen[0] != "Dom3" {
		t.Fatalf("sweep 2 BreakerOpen = %v, want [Dom3]", rep2.BreakerOpen)
	}
	snap := cloud.Metrics().Snapshot()
	if got := counterValue(snap, "scanner/breaker_trips"); got != 1 {
		t.Errorf("scanner/breaker_trips = %d, want 1", got)
	}

	// Sweep 3: sitting out quarantine, breaker still open in the report.
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Skipped) != 1 || len(rep3.BreakerOpen) != 1 {
		t.Fatalf("sweep 3: skipped=%v breaker=%v", rep3.Skipped, rep3.BreakerOpen)
	}

	// Faults clear; sweep 4 probes (half-open), reads clean, closes the
	// breaker and readmits.
	plan.Quiesce()
	rep4, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep4.Readmitted) != 1 || rep4.Readmitted[0] != "Dom3" {
		t.Fatalf("sweep 4 Readmitted = %v, want [Dom3]", rep4.Readmitted)
	}
	if rep4.Health["Dom3"] != HealthHealthy || len(rep4.BreakerOpen) != 0 {
		t.Errorf("sweep 4: health=%v breaker=%v, want healthy/closed", rep4.Health["Dom3"], rep4.BreakerOpen)
	}
}

// TestBreakerTripsOnControlPlaneFailures: repeated lifecycle-operation
// failures (here: snapshots that keep failing) open the domain's breaker at
// the next partition even though its read path is perfectly healthy, and a
// clean probe closes the breaker and forgives the failure streak.
func TestBreakerTripsOnControlPlaneFailures(t *testing.T) {
	cloud := testCloud(t, 4, 233)
	plan := NewFaultPlan(43)
	plan.FailOpsForever("Dom2", OpSnapshot, 0)
	cloud.InstallFaultPlan(plan)

	d := cloud.Domain("Dom2")
	for i := 0; i < 2; i++ {
		if err := d.TakeSnapshot("cp"); err == nil {
			t.Fatal("scheduled snapshot fault did not fire")
		}
	}
	if got := d.ControlFailures(); got != 2 {
		t.Fatalf("ControlFailures = %d, want 2", got)
	}

	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})

	// Sweep 1: partition opens the breaker — Dom2 is skipped, not checked.
	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Health["Dom2"] != HealthQuarantined || rep1.VMs != 3 {
		t.Fatalf("sweep 1: health=%v vms=%d", rep1.Health["Dom2"], rep1.VMs)
	}
	if len(rep1.Skipped) != 1 || rep1.Skipped[0] != "Dom2" {
		t.Fatalf("sweep 1 Skipped = %v, want [Dom2]", rep1.Skipped)
	}
	if len(rep1.BreakerOpen) != 1 || rep1.BreakerOpen[0] != "Dom2" {
		t.Fatalf("sweep 1 BreakerOpen = %v, want [Dom2]", rep1.BreakerOpen)
	}
	snap := cloud.Metrics().Snapshot()
	if got := counterValue(snap, "scanner/breaker_trips"); got != 1 {
		t.Errorf("scanner/breaker_trips = %d, want 1", got)
	}

	// Sweep 2: still in quarantine (ReadmitAfter 2).
	if _, err := sc.Sweep(); err != nil {
		t.Fatal(err)
	}

	// Sweep 3: half-open probe reads clean — breaker closes and the
	// domain's control-failure streak is forgiven.
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Readmitted) != 1 || rep3.Readmitted[0] != "Dom2" {
		t.Fatalf("sweep 3 Readmitted = %v, want [Dom2]", rep3.Readmitted)
	}
	if len(rep3.BreakerOpen) != 0 {
		t.Errorf("sweep 3 BreakerOpen = %v, want closed", rep3.BreakerOpen)
	}
	if got := d.ControlFailures(); got != 0 {
		t.Errorf("ControlFailures = %d after clean probe, want 0", got)
	}
}

// TestAbortSweepOnDestroyDuringDiscovery: domains destroyed while the
// session's list walks are running leave discovery with no reference VM;
// the sweep aborts cleanly without advancing the health clock.
func TestAbortSweepOnDestroyDuringDiscovery(t *testing.T) {
	cloud := testCloud(t, 3, 239)
	plan := NewFaultPlan(47)
	for _, vm := range []string{"Dom1", "Dom2", "Dom3"} {
		plan.DestroyAt(vm, 0)
	}
	cloud.InstallFaultPlan(plan)

	sc := cloud.NewScanner() // no SetModules: the sweep must discover
	if _, err := sc.Sweep(); err == nil {
		t.Fatal("sweep with every domain destroyed mid-discovery did not abort")
	}
	if sc.Sweeps() != 0 {
		t.Fatalf("aborted sweep advanced the counter to %d", sc.Sweeps())
	}
	snap := cloud.Metrics().Snapshot()
	if got := counterValue(snap, "scanner/aborted_sweeps"); got != 1 {
		t.Errorf("scanner/aborted_sweeps = %d, want 1", got)
	}
	// The next attempt sees the destroyed domains at partition time and
	// aborts for lack of an eligible pool.
	if _, err := sc.Sweep(); err == nil {
		t.Fatal("follow-up sweep over destroyed pool did not abort")
	}
	if sc.Sweeps() != 0 {
		t.Errorf("sweeps = %d after two aborts, want 0", sc.Sweeps())
	}
}

// TestResumeResamplesIdentityAfterRevert is the satellite regression for
// stale identity tokens across a checkpoint/resume cut under
// WithIdentityDedup. Between the cut and the resume a clone is reverted to
// a snapshot — which swaps its guest's physical-memory object — and then
// infected. A resumed sweep that kept pre-cut identity samples (or an
// Identity closure pinned to the pre-revert memory) would still see the
// clone advertising its template's clean content token, dedup it behind a
// clean leader, and inherit a CLEAN verdict for a module that is now
// tampered. The contract: identities are resampled at resume, the diverged
// clone leads itself, and the deferred module's infection is flagged.
func TestResumeResamplesIdentityAfterRevert(t *testing.T) {
	cloud, err := NewCloud(CloudConfig{VMs: 8, Templates: 2, Seed: 212})
	if err != nil {
		t.Fatal(err)
	}
	sc := cloud.NewScanner(WithIdentityDedup())
	// Modules sweep in sorted order, so ntfs.sys is last: the budgeted cut
	// below must defer it to the resume.
	modules := []string{"hal.dll", "http.sys", "ndis.sys", "ntfs.sys"}
	sc.SetModules(modules)

	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Clean() || rep1.ModulesChecked != len(modules) {
		t.Fatalf("seed sweep: clean=%v checked=%d", rep1.Clean(), rep1.ModulesChecked)
	}

	work := rep1.Timing.Fetch + rep1.Timing.Digest + rep1.Timing.Compare
	sc.SetBudget(BudgetPolicy{SweepBudget: rep1.Timing.List + work/2})
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Partial {
		t.Fatal("budgeted sweep was not cut")
	}
	deferred := false
	for _, m := range rep2.Remaining {
		if m == "ntfs.sys" {
			deferred = true
		}
	}
	if !deferred {
		t.Fatalf("ntfs.sys not deferred by the cut; remaining %v", rep2.Remaining)
	}

	// Divergence between cut and resume: revert Dom5 (a clone, deduped
	// behind its template's leader while clean), then tamper with the
	// deferred module. The revert is what made the historical bug bite —
	// it replaces the guest's memory object, so a pinned closure keeps
	// reading the untouched pre-revert image and reports its clean token.
	d := cloud.Domain("Dom5")
	if err := d.TakeSnapshot("cut"); err != nil {
		t.Fatal(err)
	}
	if err := d.Revert("cut"); err != nil {
		t.Fatal(err)
	}
	if err := InfectStubPatch(cloud, "Dom5", "ntfs.sys", "DOS", "CHK"); err != nil {
		t.Fatal(err)
	}

	sc.SetBudget(BudgetPolicy{})
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Resumed {
		t.Fatal("third sweep did not resume the checkpoint")
	}
	found := false
	for _, a := range rep3.Alerts {
		if a.VM == "Dom5" && a.Module == "ntfs.sys" {
			found = true
		}
	}
	if !found {
		t.Fatalf("resumed sweep missed the post-revert infection on Dom5; alerts: %+v", rep3.Alerts)
	}
}
