package modchecker

import (
	"testing"

	"modchecker/internal/guest"
)

// TestAbortedSweepDoesNotCount is the regression for the sweep-counter bug:
// an aborted sweep (too few eligible VMs) must not advance the completed
// sweep count or the health clock derived from it. It is accounted on the
// scanner/aborted_sweeps counter instead.
func TestAbortedSweepDoesNotCount(t *testing.T) {
	cloud := testCloud(t, 3, 151)
	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})
	for _, vm := range []string{"Dom2", "Dom3"} {
		if err := cloud.Hypervisor().DestroyDomain(vm); err != nil {
			t.Fatal(err)
		}
	}
	for attempt := 1; attempt <= 2; attempt++ {
		if _, err := sc.Sweep(); err == nil {
			t.Fatalf("attempt %d: sweep with 1 eligible VM did not abort", attempt)
		}
		if sc.Sweeps() != 0 {
			t.Fatalf("attempt %d advanced the sweep counter to %d", attempt, sc.Sweeps())
		}
	}
	snap := cloud.Metrics().Snapshot()
	if got := counterValue(snap, "scanner/aborted_sweeps"); got != 2 {
		t.Errorf("scanner/aborted_sweeps = %d, want 2", got)
	}
	if got := counterValue(snap, "scanner/sweeps"); got != 0 {
		t.Errorf("scanner/sweeps = %d, want 0", got)
	}
}

// TestAbortedSweepLeavesProbeTimingUnchanged pins the health-clock half of
// the bugfix: a quarantined VM's readmission probe fires after ReadmitAfter
// *completed* sweeps, and an aborted attempt in between must not bring the
// probe forward. It also pins the fresh-quarantine stamp: a failed probe
// restarts the ReadmitAfter timer from the probing sweep, not the original
// quarantine sweep.
func TestAbortedSweepLeavesProbeTimingUnchanged(t *testing.T) {
	cloud := testCloud(t, 4, 157)
	plan := NewFaultPlan(23)
	plan.FailForever("Dom3", 0)
	plan.FailForever("Dom4", 0)
	cloud.InstallFaultPlan(plan)

	// No SetModules: the sweep must discover the module list, so an attempt
	// where every healthy VM's list walk fails aborts at discovery.
	sc := cloud.NewScanner()
	sc.SetHealthPolicy(HealthPolicy{QuarantineAfter: 1, ReadmitAfter: 2})

	// Completed sweep 1: both failing VMs quarantined at sweep 1.
	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Health["Dom3"] != HealthQuarantined || rep1.Health["Dom4"] != HealthQuarantined {
		t.Fatalf("health after sweep 1 = %v", rep1.Health)
	}

	// Force one aborted attempt: a one-read outage on each remaining healthy
	// VM fails both list walks, so discovery finds no reference VM. Each
	// failing walk consumes exactly the one scheduled read, so the windows
	// are exhausted by the abort and the next attempt proceeds normally.
	r1, r2 := plan.Reads("Dom1"), plan.Reads("Dom2")
	plan.FailReads("Dom1", r1, r1+1)
	plan.FailReads("Dom2", r2, r2+1)
	if _, err := sc.Sweep(); err == nil {
		t.Fatal("attempt with all list walks failing did not abort")
	}
	if sc.Sweeps() != 1 {
		t.Fatalf("aborted attempt advanced sweeps to %d", sc.Sweeps())
	}

	// Completed sweep 2: one completed sweep since quarantine — not due yet
	// (ReadmitAfter 2), so both stay skipped. Had the aborted attempt
	// advanced the clock, this sweep would already probe them.
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Sweep != 2 || rep2.VMs != 2 {
		t.Fatalf("sweep 2: Sweep=%d VMs=%d, want 2/2", rep2.Sweep, rep2.VMs)
	}
	if len(rep2.Skipped) != 2 || rep2.Skipped[0] != "Dom3" || rep2.Skipped[1] != "Dom4" {
		t.Fatalf("sweep 2 Skipped = %v, want [Dom3 Dom4] (probe fired early)", rep2.Skipped)
	}

	// Completed sweep 3: two completed sweeps since quarantine — both are
	// probed, both probes fail permanently, and the quarantine stamp is
	// refreshed to sweep 3.
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Skipped) != 0 || rep3.VMs != 4 {
		t.Fatalf("sweep 3: Skipped=%v VMs=%d, want probes for both", rep3.Skipped, rep3.VMs)
	}
	if rep3.Health["Dom3"] != HealthQuarantined || rep3.Health["Dom4"] != HealthQuarantined {
		t.Fatalf("failed probes did not re-quarantine: %v", rep3.Health)
	}

	// Completed sweep 4: only one sweep since the *re*-quarantine, so the
	// probe must not fire. With a stale quarantinedAt (the original sweep 1)
	// it would.
	rep4, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep4.Skipped) != 2 {
		t.Fatalf("sweep 4 Skipped = %v, want [Dom3 Dom4] (stale quarantine stamp)", rep4.Skipped)
	}

	// Completed sweep 5: due again.
	rep5, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep5.Skipped) != 0 {
		t.Fatalf("sweep 5 Skipped = %v, want probes for both", rep5.Skipped)
	}
}

// TestDestroyedDomainAccountedAndReadmitted is the regression for the
// skipped-accounting bug: a destroyed domain is quarantined *and* listed in
// SweepReport.Skipped every sweep it sits out, and a domain re-created under
// the same name re-enters through the normal readmission-probe path.
func TestDestroyedDomainAccountedAndReadmitted(t *testing.T) {
	cloud := testCloud(t, 4, 163)
	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})
	sc.SetHealthPolicy(HealthPolicy{QuarantineAfter: 1, ReadmitAfter: 2})

	if err := cloud.Hypervisor().DestroyDomain("Dom4"); err != nil {
		t.Fatal(err)
	}
	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Skipped) != 1 || rep1.Skipped[0] != "Dom4" {
		t.Fatalf("sweep 1 Skipped = %v, want [Dom4]", rep1.Skipped)
	}
	if len(rep1.Quarantined) != 1 || rep1.Quarantined[0] != "Dom4" {
		t.Fatalf("sweep 1 Quarantined = %v, want [Dom4]", rep1.Quarantined)
	}
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Skipped) != 1 || rep2.Skipped[0] != "Dom4" {
		t.Fatalf("sweep 2 Skipped = %v, want [Dom4] (still destroyed)", rep2.Skipped)
	}

	// Re-create Dom4 from the standard disk (a fresh boot seed gives it new
	// load addresses — the situation RVA normalization exists for).
	disk, err := guest.BuildStandardDisk()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.Hypervisor().CreateDomain(guest.Config{
		Name: "Dom4", MemBytes: 64 << 20, BootSeed: 9001, Disk: disk,
	}); err != nil {
		t.Fatal(err)
	}

	// Sweep 3: two completed sweeps since quarantine — the probe fires, the
	// fresh Dom4 reads clean, and it is readmitted.
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Readmitted) != 1 || rep3.Readmitted[0] != "Dom4" {
		t.Fatalf("sweep 3 Readmitted = %v, want [Dom4]", rep3.Readmitted)
	}
	if rep3.Health["Dom4"] != HealthHealthy || len(rep3.Skipped) != 0 {
		t.Fatalf("sweep 3: health=%v skipped=%v", rep3.Health["Dom4"], rep3.Skipped)
	}
	if !rep3.Clean() {
		t.Errorf("re-created domain raised alerts: %+v / %+v", rep3.Alerts, rep3.Errors)
	}
	snap := cloud.Metrics().Snapshot()
	if got := counterValue(snap, "scanner/readmissions"); got != 1 {
		t.Errorf("scanner/readmissions = %d, want 1", got)
	}
	if got := counterValue(snap, "scanner/quarantines"); got != 1 {
		t.Errorf("scanner/quarantines = %d, want 1", got)
	}
}

// TestStrikesResetOnCleanSweep pins the consecutive-failure semantics of
// QuarantineAfter: a clean sweep between two failing ones resets the strike
// count, so quarantine requires genuinely consecutive failures.
func TestStrikesResetOnCleanSweep(t *testing.T) {
	cloud := testCloud(t, 3, 167)
	plan := NewFaultPlan(29)
	// Sweep 1 fails Dom3's list walk (one read consumed).
	plan.FailReads("Dom3", 0, 1)
	cloud.InstallFaultPlan(plan)

	sc := cloud.NewScanner()
	sc.SetModules([]string{"hal.dll"})
	sc.SetHealthPolicy(HealthPolicy{QuarantineAfter: 2, ReadmitAfter: 1})

	rep1, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Health["Dom3"] != HealthSuspect {
		t.Fatalf("after failing sweep 1: %v, want suspect", rep1.Health["Dom3"])
	}

	// Sweep 2 is clean: the strike resets.
	rep2, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Health["Dom3"] != HealthHealthy {
		t.Fatalf("after clean sweep 2: %v, want healthy", rep2.Health["Dom3"])
	}

	// Sweeps 3 and 4 fail again. Only the second consecutive failure may
	// quarantine; if strikes survived the clean sweep, sweep 3 would already
	// tip Dom3 over QuarantineAfter=2.
	r := plan.Reads("Dom3")
	plan.FailReads("Dom3", r, r+2)
	rep3, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Health["Dom3"] != HealthSuspect {
		t.Fatalf("after failing sweep 3: %v, want suspect (strikes did not reset)", rep3.Health["Dom3"])
	}
	rep4, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Health["Dom3"] != HealthQuarantined {
		t.Fatalf("after failing sweep 4: %v, want quarantined", rep4.Health["Dom3"])
	}
}

// TestHealthDeterministicAcrossRuns: the health machine's outcome — states,
// quarantine lists, readmissions — is identical across two identically
// seeded runs of a faulty scenario, in both sequential and parallel modes.
func TestHealthDeterministicAcrossRuns(t *testing.T) {
	run := func(parallel bool) string {
		var opts []CheckerOption
		if parallel {
			opts = append(opts, WithParallel(), WithRetry(DefaultRetryPolicy()))
		}
		cloud := testCloud(t, 6, 173)
		plan := NewFaultPlan(31)
		plan.FailForever("Dom2", 10)
		plan.FlakyReads("Dom5", 0.05)
		cloud.InstallFaultPlan(plan)
		sc := cloud.NewScanner(opts...)
		sc.SetModules([]string{"hal.dll", "ndis.sys"})
		sc.SetHealthPolicy(HealthPolicy{QuarantineAfter: 2, ReadmitAfter: 1})
		var out string
		for i := 0; i < 4; i++ {
			rep, err := sc.Sweep()
			if err != nil {
				t.Fatal(err)
			}
			out += sweepFingerprint(rep) + healthFingerprint(rep) + "\n"
		}
		return out
	}
	for _, parallel := range []bool{false, true} {
		a, b := run(parallel), run(parallel)
		if a != b {
			t.Errorf("parallel=%v: health machine diverges across identically seeded runs:\n--- run 1\n%s--- run 2\n%s",
				parallel, a, b)
		}
	}
}
