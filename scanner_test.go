package modchecker

import (
	"testing"
)

func TestScannerCleanSweep(t *testing.T) {
	cloud := testCloud(t, 4, 71)
	sc := cloud.NewScanner()
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean cloud raised alerts: %+v", rep.Alerts)
	}
	if rep.ModulesChecked != 7 {
		t.Errorf("checked %d modules", rep.ModulesChecked)
	}
	if rep.Sweep != 1 || sc.Sweeps() != 1 {
		t.Errorf("sweep counter = %d/%d", rep.Sweep, sc.Sweeps())
	}
	if rep.Simulated <= 0 {
		t.Errorf("simulated duration = %v", rep.Simulated)
	}
}

func TestScannerFindsInfection(t *testing.T) {
	cloud := testCloud(t, 4, 73)
	if err := InfectPreset(cloud, "Dom3", "tcpirphook"); err != nil {
		t.Fatal(err)
	}
	rep, err := cloud.NewScanner().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Alerts) != 1 {
		t.Fatalf("alerts = %+v", rep.Alerts)
	}
	a := rep.Alerts[0]
	if a.Module != "tcpip.sys" || a.VM != "Dom3" || a.Verdict != VerdictAltered {
		t.Errorf("alert = %+v", a)
	}
	if len(a.Components) != 1 || a.Components[0] != ".text" {
		t.Errorf("components = %v", a.Components)
	}
}

func TestScannerMultipleInfections(t *testing.T) {
	cloud := testCloud(t, 5, 79)
	if err := InfectPreset(cloud, "Dom1", "opcode-patch"); err != nil {
		t.Fatal(err)
	}
	if err := InfectPreset(cloud, "Dom4", "stub-patch"); err != nil {
		t.Fatal(err)
	}
	rep, err := cloud.NewScanner().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, a := range rep.Alerts {
		got[a.Module] = a.VM
	}
	if got["hal.dll"] != "Dom1" || got["dummy.sys"] != "Dom4" {
		t.Errorf("alerts = %+v", rep.Alerts)
	}
}

func TestScannerSetModules(t *testing.T) {
	cloud := testCloud(t, 3, 83)
	if err := InfectPreset(cloud, "Dom2", "opcode-patch"); err != nil {
		t.Fatal(err)
	}
	sc := cloud.NewScanner()
	sc.SetModules([]string{"http.sys"}) // scan only a clean module
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModulesChecked != 1 || !rep.Clean() {
		t.Errorf("report = %+v", rep)
	}
	sc.SetModules([]string{"hal.dll"})
	rep, err = sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Sweep != 2 {
		t.Errorf("report = %+v", rep)
	}
}

func TestScannerDetectThenRevertThenClean(t *testing.T) {
	cloud := testCloud(t, 3, 89)
	dom := cloud.Domain("Dom2")
	if err := dom.TakeSnapshot("clean"); err != nil {
		t.Fatal(err)
	}
	if err := InfectPreset(cloud, "Dom2", "opcode-patch"); err != nil {
		t.Fatal(err)
	}
	sc := cloud.NewScanner()
	rep, _ := sc.Sweep()
	if rep.Clean() {
		t.Fatal("infection not found")
	}
	if err := dom.Revert("clean"); err != nil {
		t.Fatal(err)
	}
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("post-revert sweep still alerts: %+v", rep.Alerts)
	}
}

func TestScannerParallel(t *testing.T) {
	cloud := testCloud(t, 4, 97)
	if err := InfectPreset(cloud, "Dom1", "rustock.b"); err != nil {
		t.Fatal(err)
	}
	rep, err := cloud.NewScanner(WithParallel()).Sweep()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range rep.Alerts {
		if a.Module == "ntfs.sys" && a.VM == "Dom1" {
			found = true
		}
	}
	if !found {
		t.Errorf("parallel sweep missed rustock.b: %+v", rep.Alerts)
	}
}
