package modchecker

import (
	"testing"
)

// TestSmokeCleanCloud boots a small cloud and verifies that an untampered
// module is judged clean on every VM despite different load bases.
func TestSmokeCleanCloud(t *testing.T) {
	cloud, err := NewCloud(CloudConfig{VMs: 4, Seed: 1})
	if err != nil {
		t.Fatalf("NewCloud: %v", err)
	}
	checker := cloud.NewChecker()

	// Load bases must differ between VMs (otherwise the normalization is
	// never exercised).
	b1 := cloud.Guest("Dom1").Module("hal.dll").Base
	b2 := cloud.Guest("Dom2").Module("hal.dll").Base
	if b1 == b2 {
		t.Fatalf("Dom1 and Dom2 loaded hal.dll at the same base %#x", b1)
	}

	rep, err := checker.CheckModule("hal.dll", "Dom1")
	if err != nil {
		t.Fatalf("CheckModule: %v", err)
	}
	if rep.Verdict != VerdictClean {
		t.Fatalf("clean hal.dll judged %v; mismatched components: %v\npairs: %+v",
			rep.Verdict, rep.MismatchedComponents(), rep.Pairs)
	}
	if rep.Successes != 3 {
		t.Fatalf("successes = %d, want 3", rep.Successes)
	}
}

// TestSmokeDetectOpcode infects one VM with the E1 opcode replacement and
// verifies only .text is flagged, on the infected VM only.
func TestSmokeDetectOpcode(t *testing.T) {
	cloud, err := NewCloud(CloudConfig{VMs: 5, Seed: 2})
	if err != nil {
		t.Fatalf("NewCloud: %v", err)
	}
	if err := InfectPreset(cloud, "Dom3", "opcode-patch"); err != nil {
		t.Fatalf("infect: %v", err)
	}
	pool, err := cloud.NewChecker().CheckPool("hal.dll")
	if err != nil {
		t.Fatalf("CheckPool: %v", err)
	}
	if len(pool.Flagged) != 1 || pool.Flagged[0] != "Dom3" {
		t.Fatalf("flagged = %v, want [Dom3]", pool.Flagged)
	}
	rep := pool.Report("Dom3")
	mm := rep.MismatchedComponents()
	if len(mm) != 1 || mm[0] != ".text" {
		t.Fatalf("mismatched components on Dom3 = %v, want [.text]", mm)
	}
}
