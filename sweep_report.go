package modchecker

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// sweepAlertJSON is the stable JSON shape of one sweep alert.
type sweepAlertJSON struct {
	Module     string   `json:"module"`
	VM         string   `json:"vm"`
	Verdict    string   `json:"verdict"`
	Components []string `json:"components,omitempty"`
	Reason     string   `json:"reason,omitempty"`
}

type sweepErrorJSON struct {
	Module string `json:"module"`
	Error  string `json:"error"`
}

type sweepTimingJSON struct {
	ListMS    float64 `json:"list_ms"`
	FetchMS   float64 `json:"fetch_ms"`
	DigestMS  float64 `json:"digest_ms"`
	CompareMS float64 `json:"compare_ms"`
}

// sweepJSON is the stable JSON shape of a whole sweep. Counts for skipped
// VMs, budget-dropped VMs, and deferred modules are always present (not
// omitempty) so downstream tooling can threshold on them without probing
// for the field.
type sweepJSON struct {
	Sweep          int               `json:"sweep"`
	ModulesChecked int               `json:"modules_checked"`
	VMs            int               `json:"vms"`
	Clean          bool              `json:"clean"`
	Partial        bool              `json:"partial"`
	Resumed        bool              `json:"resumed"`
	Alerts         []sweepAlertJSON  `json:"alerts,omitempty"`
	Errors         []sweepErrorJSON  `json:"errors,omitempty"`
	Health         map[string]string `json:"health,omitempty"`
	Quarantined    []string          `json:"quarantined,omitempty"`
	Readmitted     []string          `json:"readmitted,omitempty"`
	Skipped        []string          `json:"skipped,omitempty"`
	SkippedCount   int               `json:"skipped_count"`
	Remaining      []string          `json:"remaining_modules,omitempty"`
	RemainingCount int               `json:"remaining_count"`
	BudgetExceeded []string          `json:"budget_exceeded,omitempty"`
	BudgetCount    int               `json:"budget_exceeded_count"`
	BreakerOpen    []string          `json:"breaker_open,omitempty"`
	SimulatedMS    float64           `json:"simulated_ms"`
	Timing         sweepTimingJSON   `json:"timing"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteJSON emits the sweep report as indented JSON. Map keys are sorted by
// the encoder and every list is already sorted by the scanner, so the bytes
// are identical across identically seeded runs.
//
//moddet:sink sweep JSON must be byte-identical across runs
func (r *SweepReport) WriteJSON(w io.Writer) error {
	out := sweepJSON{
		Sweep:          r.Sweep,
		ModulesChecked: r.ModulesChecked,
		VMs:            r.VMs,
		Clean:          r.Clean(),
		Partial:        r.Partial,
		Resumed:        r.Resumed,
		Quarantined:    r.Quarantined,
		Readmitted:     r.Readmitted,
		Skipped:        r.Skipped,
		SkippedCount:   len(r.Skipped),
		Remaining:      r.Remaining,
		RemainingCount: len(r.Remaining),
		BudgetExceeded: r.BudgetExceeded,
		BudgetCount:    len(r.BudgetExceeded),
		BreakerOpen:    r.BreakerOpen,
		SimulatedMS:    durMS(r.Simulated),
		Timing: sweepTimingJSON{
			ListMS:    durMS(r.Timing.List),
			FetchMS:   durMS(r.Timing.Fetch),
			DigestMS:  durMS(r.Timing.Digest),
			CompareMS: durMS(r.Timing.Compare),
		},
	}
	for _, a := range r.Alerts {
		out.Alerts = append(out.Alerts, sweepAlertJSON{
			Module: a.Module, VM: a.VM, Verdict: a.Verdict.String(),
			Components: a.Components, Reason: a.Reason,
		})
	}
	for _, e := range r.Errors {
		out.Errors = append(out.Errors, sweepErrorJSON{Module: e.Module, Error: e.Err.Error()})
	}
	if len(r.Health) > 0 {
		out.Health = make(map[string]string, len(r.Health))
		for vm, st := range r.Health {
			out.Health[vm] = st.String()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText renders the sweep report as operator-facing text: the one-line
// summary first, then alerts, errors, and the robustness accounting —
// skipped VMs, budget-dropped VMs, checkpointed modules, open breakers.
//
//moddet:sink sweep text must be byte-identical across runs
func (r *SweepReport) WriteText(w io.Writer) error {
	status := "clean"
	switch {
	case len(r.Alerts) > 0:
		status = fmt.Sprintf("%d alert(s)", len(r.Alerts))
	case r.Partial:
		status = fmt.Sprintf("partial (%d modules deferred)", len(r.Remaining))
	case !r.Clean():
		status = "not clean (no coverage)"
	}
	tag := ""
	if r.Resumed {
		tag = " [resumed]"
	}
	if r.Partial {
		tag += " [partial]"
	}
	if _, err := fmt.Fprintf(w, "[sweep %d]%s %d modules x %d VMs in %v simulated: %s\n",
		r.Sweep, tag, r.ModulesChecked, r.VMs, r.Simulated.Round(time.Microsecond), status); err != nil {
		return err
	}
	for _, a := range r.Alerts {
		detail := strings.Join(a.Components, ", ")
		if detail == "" {
			detail = a.Reason
		}
		fmt.Fprintf(w, "  ALERT %s on %s: %s (%s)\n", a.Module, a.VM, a.Verdict, detail)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(w, "  ERROR %s: %v\n", e.Module, e.Err)
	}
	if len(r.Skipped) > 0 {
		fmt.Fprintf(w, "  skipped VMs (%d): %s\n", len(r.Skipped), strings.Join(r.Skipped, ", "))
	}
	if len(r.BudgetExceeded) > 0 {
		fmt.Fprintf(w, "  budget-exceeded VMs (%d): %s\n", len(r.BudgetExceeded), strings.Join(r.BudgetExceeded, ", "))
	}
	if len(r.Remaining) > 0 {
		fmt.Fprintf(w, "  deferred modules (%d, resume next sweep): %s\n", len(r.Remaining), strings.Join(r.Remaining, ", "))
	}
	if len(r.BreakerOpen) > 0 {
		fmt.Fprintf(w, "  breaker open: %s\n", strings.Join(r.BreakerOpen, ", "))
	}
	if len(r.Readmitted) > 0 {
		fmt.Fprintf(w, "  readmitted: %s\n", strings.Join(r.Readmitted, ", "))
	}
	if len(r.Quarantined) > 0 {
		fmt.Fprintf(w, "  quarantined: %s\n", strings.Join(r.Quarantined, ", "))
	}
	if len(r.Health) > 0 {
		vms := make([]string, 0, len(r.Health))
		notable := 0
		for vm, st := range r.Health {
			vms = append(vms, vm)
			if st != HealthHealthy {
				notable++
			}
		}
		if notable > 0 {
			sort.Strings(vms)
			parts := make([]string, 0, len(vms))
			for _, vm := range vms {
				parts = append(parts, vm+"="+r.Health[vm].String())
			}
			fmt.Fprintf(w, "  health: %s\n", strings.Join(parts, " "))
		}
	}
	return nil
}
