package modchecker

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSweepReportWritersSurfaceRobustnessCounts: the JSON and text writers
// expose the skipped, budget-exceeded, and checkpoint accounting, and the
// JSON counts are always present (not omitted when zero).
func TestSweepReportWritersSurfaceRobustnessCounts(t *testing.T) {
	cloud := testCloud(t, 4, 241)
	if err := cloud.Hypervisor().DestroyDomain("Dom4"); err != nil {
		t.Fatal(err)
	}
	sc := cloud.NewScanner()
	sc.SetBudget(BudgetPolicy{VMBudget: time.Nanosecond})
	rep, err := sc.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 1 || len(rep.BudgetExceeded) != 3 || len(rep.Remaining) == 0 {
		t.Fatalf("fixture sweep: skipped=%v budget=%v remaining=%v",
			rep.Skipped, rep.BudgetExceeded, rep.Remaining)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("writer emitted invalid JSON: %v", err)
	}
	if got := out["skipped_count"]; got != float64(1) {
		t.Errorf("skipped_count = %v, want 1", got)
	}
	if got := out["budget_exceeded_count"]; got != float64(3) {
		t.Errorf("budget_exceeded_count = %v, want 3", got)
	}
	if got := out["remaining_count"]; got != float64(len(rep.Remaining)) {
		t.Errorf("remaining_count = %v, want %d", got, len(rep.Remaining))
	}
	if got := out["partial"]; got != true {
		t.Errorf("partial = %v, want true", got)
	}
	if got := out["clean"]; got != false {
		t.Errorf("clean = %v, want false (partial sweep)", got)
	}

	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[partial]", "skipped VMs (1): Dom4", "budget-exceeded VMs (3):", "deferred modules ("} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}

	// A clean sweep still carries the (zero) counts in JSON.
	cloud2 := testCloud(t, 3, 241)
	rep2, err := cloud2.NewScanner().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := rep2.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"skipped_count", "budget_exceeded_count", "remaining_count"} {
		if !strings.Contains(buf.String(), `"`+key+`": 0`) {
			t.Errorf("clean-sweep JSON missing zero %s:\n%s", key, buf.String())
		}
	}
}

// TestSweepReportJSONDeterministic: identical seeds produce byte-identical
// sweep JSON — the fingerprint the chaos harness is built on.
func TestSweepReportJSONDeterministic(t *testing.T) {
	run := func() string {
		cloud := testCloud(t, 5, 251)
		plan := NewFaultPlan(53)
		plan.FailForever("Dom2", 10)
		plan.FlakyReads("Dom5", 0.05)
		cloud.InstallFaultPlan(plan)
		sc := cloud.NewScanner()
		var b bytes.Buffer
		for i := 0; i < 3; i++ {
			rep, err := sc.Sweep()
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.WriteJSON(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("sweep JSON diverges across identically seeded runs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}
