package modchecker

import "fmt"

// UpdateModule rolls a legitimate module update out to every VM in the
// cloud: the on-disk image is replaced and the module reloaded, the way a
// fleet-wide driver update lands. Because all VMs end up with the same new
// code, ModChecker's cross-VM comparison keeps reporting clean — no hash
// dictionary to refresh. (Contrast with baseline.Database, which flags
// every VM until an administrator re-registers the new image; see the
// update-scenario experiment.)
func UpdateModule(c *Cloud, module string, newImage []byte) error {
	for _, name := range c.VMNames() {
		g := c.Guest(name)
		if err := g.ReplaceDiskImage(module, newImage); err != nil {
			return fmt.Errorf("modchecker: updating %s on %s: %w", module, name, err)
		}
		if err := g.UnloadModule(module); err != nil {
			return fmt.Errorf("modchecker: updating %s on %s: %w", module, name, err)
		}
		if _, err := g.LoadModule(module); err != nil {
			return fmt.Errorf("modchecker: updating %s on %s: %w", module, name, err)
		}
	}
	return nil
}
